"""JobManager semantics: coalescing, quotas, scheduling, retention."""

import asyncio
import pickle
import time

import pytest

from repro.exec.cache import ResultCache, unit_key
from repro.serve import jobs as jobs_mod
from repro.serve.jobs import (
    JobFailedError,
    JobManager,
    JobNotDoneError,
    QuotaExceededError,
    ServeConfig,
    UnknownJobError,
)
from repro.serve.schema import SubmitRequest
from repro.sim.engine import ENGINE_VERSION


def _request(**overrides):
    base = dict(workload="gups", configs=("private", "nocstar"),
                cores=4, accesses_per_core=200, seed=3)
    base.update(overrides)
    return SubmitRequest(**base)


def _run(coro):
    return asyncio.run(coro)


async def _with_manager(config, body):
    manager = JobManager(config)
    await manager.start()
    try:
        return await body(manager)
    finally:
        await manager.close()


def _counter(manager, name):
    return manager.registry.counter(name).value


# ----------------------------------------------------------------------
# coalescing

def test_concurrent_identical_submissions_execute_once():
    """N concurrent identical submissions -> one job, one execution per
    unit, N identical results (the tentpole's coalescing contract)."""
    fanout = 8

    async def body(manager):
        pairs = await asyncio.gather(
            *(manager.submit(_request()) for _ in range(fanout))
        )
        job_ids = {job_id for job_id, _ in pairs}
        assert len(job_ids) == 1
        (job_id,) = job_ids
        # Exactly one admission created the job; the rest coalesced.
        assert sum(1 for _, info in pairs if not info["coalesced"]) == 1
        assert sum(1 for _, info in pairs if info["coalesced"]) == fanout - 1
        await manager.wait(job_id)
        results = [manager.result(job_id) for _ in range(fanout)]
        blobs = {pickle.dumps(r.results) for r in results}
        assert len(blobs) == 1
        return manager.registry.snapshot()["counters"]

    counters = _run(_with_manager(ServeConfig(workers=0, quota=0), body))
    # One execution per unit of the lineup, despite 8 submissions.
    assert counters["serve.executions"] == 2
    assert counters["serve.submissions"] == 8
    assert counters["serve.jobs_coalesced"] == 7
    assert counters["serve.completed_jobs"] == 1


def test_overlapping_lineups_share_units(monkeypatch):
    """Two jobs sharing a baseline config share its execution."""

    def slow_execute(unit, artifact=None):
        time.sleep(0.2)  # keep units in flight across both submissions
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)

    async def body(manager):
        job_a, info_a = await manager.submit(
            _request(configs=("private", "nocstar"))
        )
        job_b, info_b = await manager.submit(
            _request(configs=("private", "distributed"))
        )
        assert job_a != job_b
        # The private unit was in flight when job B arrived.
        assert info_b["units_coalesced"] >= 1
        await manager.wait(job_a)
        await manager.wait(job_b)
        a = manager.result(job_a).results["private"]
        b = manager.result(job_b).results["private"]
        assert pickle.dumps(a) == pickle.dumps(b)
        return manager.registry.snapshot()["counters"]

    counters = _run(_with_manager(ServeConfig(workers=0, quota=0), body))
    # 4 requested units, 3 distinct: private executed once.
    assert counters["serve.executions"] == 3
    assert counters["serve.units_coalesced"] == 1


def test_cache_hit_resolves_without_execution(tmp_path):
    cache_dir = str(tmp_path / "cache")
    config = ServeConfig(workers=0, cache_dir=cache_dir)

    async def first(manager):
        job_id, info = await manager.submit(_request(configs=("nocstar",)))
        assert info["units_cached"] == 0
        await manager.wait(job_id)
        return manager.result(job_id).results["nocstar"]

    async def second(manager):
        job_id, info = await manager.submit(_request(configs=("nocstar",)))
        assert info["units_cached"] == 1
        assert info["state"] == "done"  # resolved at admission
        assert manager.status(job_id).units_cached == 1
        assert _counter(manager, "serve.executions") == 0
        assert _counter(manager, "serve.units_cache_hits") == 1
        return manager.result(job_id).results["nocstar"]

    fresh = _run(_with_manager(config, first))
    replayed = _run(_with_manager(config, second))
    assert pickle.dumps(fresh) == pickle.dumps(replayed)


def test_serve_cache_interoperates_with_runner_cache(tmp_path):
    """The coalescing key IS the Runner cache key, so a direct cache
    write (a CLI run) satisfies a later serve submission."""
    cache_dir = str(tmp_path / "cache")
    request = _request(configs=("nocstar",))
    unit = request.scenario().units()[0]
    from repro.exec.runner import execute_unit
    result, _, _ = execute_unit(unit)
    ResultCache(cache_dir).put(unit_key(unit, ENGINE_VERSION), result)

    async def body(manager):
        job_id, info = await manager.submit(request)
        assert info["units_cached"] == 1
        return manager.result(job_id).results["nocstar"]

    served = _run(
        _with_manager(ServeConfig(workers=0, cache_dir=cache_dir), body)
    )
    assert pickle.dumps(served) == pickle.dumps(result)


# ----------------------------------------------------------------------
# quotas

def test_quota_rejects_excess_jobs(monkeypatch):
    def slow_execute(unit, artifact=None):
        time.sleep(0.2)
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)

    async def body(manager):
        await manager.submit(_request(seed=1, client_id="alice"))
        with pytest.raises(QuotaExceededError) as excinfo:
            await manager.submit(_request(seed=2, client_id="alice"))
        assert excinfo.value.quota == 1
        # Another client is unaffected; re-submitting the SAME job is
        # coalescing, not new load, so it is also admitted.
        await manager.submit(_request(seed=1, client_id="bob"))
        job_id, info = await manager.submit(
            _request(seed=1, client_id="alice")
        )
        assert info["coalesced"]
        assert _counter(manager, "serve.quota_rejections") == 1
        await manager.wait(job_id)

    _run(_with_manager(ServeConfig(workers=0, quota=1), body))


# ----------------------------------------------------------------------
# scheduling

def test_dispatch_order_class_then_cost():
    """Interactive beats batch; within a class, costly units first."""

    async def body():
        manager = JobManager(ServeConfig(workers=0))
        manager._cond = asyncio.Condition()  # queue without consumers
        units = _request(
            configs=("private", "nocstar", "distributed")
        ).scenario().units()
        cheap, costly = units[0], units[1]
        batch = jobs_mod._Execution("k1", cheap, rank=1, artifact=None)
        inter_small = jobs_mod._Execution("k2", cheap, rank=0, artifact=None)
        inter_big = jobs_mod._Execution("k3", costly, rank=0, artifact=None)
        inter_big.cost = inter_small.cost + 1.0
        for execution in (batch, inter_small, inter_big):
            await manager._push(execution)
        order = [await manager._pop() for _ in range(3)]
        assert order == [inter_big, inter_small, batch]

    _run(body())


def test_priority_upgrade_repushes_queued_unit():
    async def body():
        manager = JobManager(ServeConfig(workers=0))
        manager._cond = asyncio.Condition()
        unit = _request(configs=("nocstar",)).scenario().units()[0]
        execution = jobs_mod._Execution("k", unit, rank=1, artifact=None)
        other = jobs_mod._Execution("k2", unit, rank=0, artifact=None)
        await manager._push(execution)
        await manager._push(other)
        # An interactive submission upgrades the queued batch unit.
        execution.rank = 0
        execution.cost = other.cost + 1.0
        await manager._push(execution)
        assert await manager._pop() is execution
        assert await manager._pop() is other
        # The stale heap entry for `execution` is skipped, not re-run.
        assert all(
            entry[3].state != "queued" for entry in manager._heap
        )

    _run(body())


# ----------------------------------------------------------------------
# failures & inspection

def test_failed_execution_fails_job(monkeypatch):
    def boom(unit, artifact=None):
        raise RuntimeError("sabotaged engine")

    monkeypatch.setattr(jobs_mod, "execute_unit", boom)

    async def body(manager):
        job_id, _ = await manager.submit(_request(configs=("nocstar",)))
        status = await manager.wait(job_id)
        assert status.state == "failed"
        assert "sabotaged" in status.error
        with pytest.raises(JobFailedError, match="sabotaged"):
            manager.result(job_id)
        assert _counter(manager, "serve.failed_executions") == 1
        assert _counter(manager, "serve.failed_jobs") == 1

    _run(_with_manager(ServeConfig(workers=0), body))


def test_unknown_job_and_not_done(monkeypatch):
    def slow_execute(unit, artifact=None):
        time.sleep(0.3)
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)

    async def body(manager):
        with pytest.raises(UnknownJobError):
            manager.status("feedbeef00000000")
        job_id, _ = await manager.submit(_request(configs=("nocstar",)))
        with pytest.raises(JobNotDoneError):
            manager.result(job_id)
        status = await manager.wait(job_id)
        assert status.state == "done"
        telemetry_units = status.telemetry["units"]
        assert [u["config"] for u in telemetry_units] == ["nocstar"]
        assert telemetry_units[0]["state"] == "done"
        assert status.run_s > 0.0

    _run(_with_manager(ServeConfig(workers=0), body))


def test_submit_requires_start():
    manager = JobManager(ServeConfig(workers=0))
    with pytest.raises(RuntimeError, match="start"):
        _run(manager.submit(_request()))


def test_bad_names_rejected_before_enqueue():
    from repro.serve.schema import SchemaError

    async def body(manager):
        with pytest.raises(SchemaError, match="unknown config"):
            await manager.submit(_request(configs=("warpdrive",)))
        assert _counter(manager, "serve.executions") == 0

    _run(_with_manager(ServeConfig(workers=0), body))


# ----------------------------------------------------------------------
# retention

def test_sweep_evicts_finished_jobs_after_ttl(tmp_path):
    config = ServeConfig(
        workers=0, result_ttl_s=100.0, cache_dir=str(tmp_path / "cache"),
        sweep_interval_s=3600.0,
    )

    async def body(manager):
        job_id, _ = await manager.submit(_request(configs=("nocstar",)))
        await manager.wait(job_id)
        # Within TTL: retained.
        evicted = manager.sweep(now=time.monotonic() + 50.0)
        assert evicted["jobs"] == 0
        manager.status(job_id)
        # Past TTL: the record goes away...
        evicted = manager.sweep(now=time.monotonic() + 101.0)
        assert evicted["jobs"] == 1
        with pytest.raises(UnknownJobError):
            manager.status(job_id)
        assert _counter(manager, "serve.jobs_evicted") == 1
        # ...but a resubmission is legal (and cache-resolved).
        job_id2, info = await manager.submit(_request(configs=("nocstar",)))
        assert job_id2 == job_id and info["units_cached"] == 1

    _run(_with_manager(config, body))


def test_sweep_disabled_when_ttl_none():
    async def body(manager):
        job_id, _ = await manager.submit(_request(configs=("nocstar",)))
        await manager.wait(job_id)
        assert manager.sweep(now=time.monotonic() + 1e9) == {
            "jobs": 0, "cache_entries": 0,
        }
        manager.status(job_id)

    _run(_with_manager(ServeConfig(workers=0, result_ttl_s=None), body))


def test_cache_evict_older_than(tmp_path):
    import os

    cache = ResultCache(str(tmp_path / "cache"))
    cache.put("a" * 64, {"x": 1})
    cache.put("b" * 64, {"x": 2})
    old = time.time() - 1000.0
    path = cache._path("a" * 64)
    os.utime(path, (old, old))
    assert cache.evict_older_than(500.0) == 1
    assert cache.get("a" * 64) is None
    assert cache.get("b" * 64) == {"x": 2}
    with pytest.raises(ValueError):
        cache.evict_older_than(-1.0)


def test_serve_config_validation():
    with pytest.raises(ValueError):
        ServeConfig(workers=-1)
    with pytest.raises(ValueError):
        ServeConfig(quota=-1)
    with pytest.raises(ValueError):
        ServeConfig(result_ttl_s=-5.0)
