"""End-to-end HTTP contract, including the determinism invariant:
an HTTP-submitted scenario returns the byte-identical RunResult a
direct Runner call produces, across the serve differential corpus."""

import http.client
import pickle
import threading
import time

import pytest

from repro.exec.runner import Runner
from repro.obs.spans import Tracer, build_tree, coverage
from repro.serve import (
    SCHEMA_VERSION,
    BackgroundDaemon,
    ServeClient,
    ServeConfig,
    ServeError,
)
from repro.serve import jobs as jobs_mod
from repro.serve.schema import SubmitRequest

from tests.obs.test_prometheus import parse_exposition
from tests.serve._requests import serve_corpus


def _request(**overrides):
    base = dict(workload="gups", configs=("private", "nocstar"),
                cores=4, accesses_per_core=200, seed=3)
    base.update(overrides)
    return SubmitRequest(**base)


@pytest.fixture()
def daemon():
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        yield ServeClient(url, timeout=30.0)


# ----------------------------------------------------------------------
# determinism invariant

def test_corpus_http_byte_identical_to_direct_runner():
    """The repo's enforced invariant, extended to the serving tier."""
    corpus = serve_corpus()
    assert len(corpus) == 16
    runner = Runner(jobs=1, cache_dir=None)
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        client = ServeClient(url, timeout=60.0)
        for name, request in corpus:
            served = client.run(request, timeout=300.0)
            scenario = request.scenario()
            direct = runner.run_one(scenario)
            assert set(served.results) == set(direct.results), name
            for config_name, direct_result in direct.results.items():
                assert pickle.dumps(served.results[config_name]) == \
                    pickle.dumps(direct_result), (name, config_name)
            assert served.baseline == scenario.baseline_name, name


def test_process_pool_round_trip_byte_identical():
    """Same invariant through the real worker-process pool."""
    request = _request(metrics=True, trace=True)
    direct = Runner(jobs=1, cache_dir=None).run_one(request.scenario())
    with BackgroundDaemon(ServeConfig(workers=2, quota=0)) as url:
        served = ServeClient(url, timeout=60.0).run(request, timeout=300.0)
    for name, result in direct.results.items():
        assert pickle.dumps(served.results[name]) == pickle.dumps(result)


# ----------------------------------------------------------------------
# concurrency over the wire

def test_concurrent_http_submissions_coalesce():
    request = _request()
    fanout = 12
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        client = ServeClient(url, timeout=30.0)
        responses = [None] * fanout
        errors = []

        def submit(i):
            try:
                responses[i] = client.submit(request)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(fanout)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        job_ids = {r["job_id"] for r in responses}
        assert len(job_ids) == 1
        (job_id,) = job_ids
        client.wait(job_id, timeout=300.0)
        results = [client.result(job_id) for _ in range(3)]
        blobs = {pickle.dumps(r.results) for r in results}
        assert len(blobs) == 1


# ----------------------------------------------------------------------
# status & metrics surfaces

def test_health_status_and_metrics(daemon):
    health = daemon.health()
    assert health["ok"] and health["workers"] == 0
    response = daemon.submit(_request())
    job_id = response["job_id"]
    status = daemon.wait(job_id, timeout=300.0)
    assert status.state == "done"
    assert status.units_total == 2 and status.units_done == 2
    assert [u["config"] for u in status.telemetry["units"]] == \
        ["private", "nocstar"]
    metrics = daemon.metrics()
    assert metrics["counters"]["serve.executions"] == 2
    assert metrics["counters"]["serve.completed_jobs"] == 1
    assert "serve.exec_ms" in metrics["histograms"]
    result = daemon.result(job_id)
    assert result.speedup("nocstar") > 0.0


# ----------------------------------------------------------------------
# span tracing across the wire

def test_traced_run_assembles_full_span_tree():
    """One traced submission yields one tree covering client -> HTTP ->
    queue -> worker -> build/sim — and the traced result stays
    byte-identical to a direct Runner call (purity)."""
    request = _request()
    direct = Runner(jobs=1, cache_dir=None).run_one(request.scenario())
    tracer = Tracer()
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        served = ServeClient(url, timeout=30.0, tracer=tracer).run(
            request, timeout=300.0
        )
    for name, result in direct.results.items():
        assert pickle.dumps(served.results[name]) == pickle.dumps(result)

    names = {r["name"] for r in tracer.records}
    assert {"client.request", "client.submit", "client.wait",
            "client.result", "server.submit", "unit.queue", "unit.exec",
            "unit.build", "unit.sim"} <= names
    roots, children = build_tree(tracer.records)
    assert [r["name"] for r in roots] == ["client.request"]
    # Every span shares the client's trace id.
    assert {r["trace_id"] for r in tracer.records} == {tracer.trace_id}
    # The coverage identity the CLI's attribution table rests on.
    info = coverage(roots[0], children)
    assert info["duration"] == pytest.approx(
        info["child_s"] + info["gap_s"]
    )
    # server.submit hangs under client.submit via the wire context.
    by_name = {r["name"]: r for r in tracer.records}
    assert by_name["server.submit"]["parent_id"] == \
        by_name["client.submit"]["span_id"]


def test_untraced_submission_carries_no_spans(daemon):
    job_id = daemon.submit(_request())["job_id"]
    status = daemon.wait(job_id, timeout=300.0)
    assert "spans" not in status.telemetry


def test_coalesced_submission_recorded_as_span():
    request = _request()
    tracer = Tracer()
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        client = ServeClient(url, timeout=30.0, tracer=tracer)
        with client.request_span():
            first = client.submit(request)
            second = client.submit(request)
            assert second["coalesced"]
            status = client.wait(first["job_id"], timeout=300.0)
    assert status.state == "done"
    names = [r["name"] for r in tracer.records]
    assert names.count("client.submit") == 2
    assert "server.coalesced" in {
        r["name"] for r in status.telemetry["spans"]
    }


def test_quota_reject_recorded_in_span_log(monkeypatch):
    def slow_execute(unit, artifact=None):
        time.sleep(0.3)
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)
    tracer = Tracer()
    background = BackgroundDaemon(ServeConfig(workers=0, quota=1))
    with background as url:
        client = ServeClient(url, timeout=30.0, tracer=tracer)
        first = client.submit(_request(seed=1, configs=("nocstar",)))
        with pytest.raises(ServeError) as excinfo:
            client.submit(_request(seed=2, configs=("nocstar",)))
        assert excinfo.value.status == 429
        rejects = [
            r for r in background.manager.span_log
            if r["name"] == "server.quota_reject"
        ]
        assert len(rejects) == 1
        assert rejects[0]["trace_id"] == tracer.trace_id
        client.wait(first["job_id"], timeout=300.0)
    # The client-side submit span carries the failure status.
    submit_spans = [
        r for r in tracer.records if r["name"] == "client.submit"
    ]
    assert any(r["status"].startswith("error") for r in submit_spans)


def test_watch_yields_snapshots_until_terminal(monkeypatch):
    def slow_execute(unit, artifact=None):
        time.sleep(0.3)
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        client = ServeClient(url, timeout=30.0)
        job_id = client.submit(_request(configs=("nocstar",)))["job_id"]
        snapshots = list(client.watch(job_id, interval_s=0.05))
    assert snapshots and snapshots[-1].done
    assert all(s.job_id == job_id for s in snapshots)
    states = [s.state for s in snapshots]
    assert states == sorted(
        states, key=["queued", "running", "done"].index
    )


def test_watch_timeout(monkeypatch):
    def slow_execute(unit, artifact=None):
        time.sleep(1.0)
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        client = ServeClient(url, timeout=30.0)
        job_id = client.submit(_request(configs=("nocstar",)))["job_id"]
        with pytest.raises(TimeoutError):
            for _ in client.watch(job_id, interval_s=0.05, timeout=0.1):
                pass
        client.wait(job_id, timeout=300.0)


# ----------------------------------------------------------------------
# Prometheus exposition & storage stats

def test_metrics_content_negotiation(daemon):
    daemon.run(_request(), timeout=300.0)
    # Default stays JSON (existing dashboards keep working).
    snapshot = daemon.metrics()
    assert snapshot["counters"]["serve.executions"] == 2
    # Accept: text/plain switches to the Prometheus exposition, which
    # must survive a strict parse of the 0.0.4 line grammar.
    text = daemon.metrics_text()
    families = parse_exposition(text)
    kind, samples = families["serve_executions_total"]
    assert kind == "counter"
    assert samples == [("serve_executions_total", None, "2")]
    assert families["serve_queue_ms"][0] == "histogram"
    buckets = [s for s in families["serve_queue_ms"][1]
               if s[0] == "serve_queue_ms_bucket"]
    assert buckets[-1][1] == "+Inf"


def test_metrics_raw_accept_header(daemon):
    """What an actual Prometheus scraper sends (q-listed Accept)."""
    daemon.run(_request(), timeout=300.0)
    status, payload = daemon._request(
        "GET", "/v1/metrics",
        accept="text/plain;version=0.0.4;q=0.5,*/*;q=0.1",
    )
    assert status == 200
    parse_exposition(payload["text"])


def test_metrics_served_during_active_dispatch(monkeypatch):
    """The exposition endpoint must answer while workers are busy —
    a scraper's GET cannot wait for the queue to drain."""
    def slow_execute(unit, artifact=None):
        time.sleep(0.5)
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        client = ServeClient(url, timeout=30.0)
        job_id = client.submit(_request(configs=("nocstar",)))["job_id"]
        started = time.monotonic()
        text = client.metrics_text()
        elapsed = time.monotonic() - started
        assert elapsed < 0.4, elapsed  # answered mid-execution
        families = parse_exposition(text)
        assert "serve_submissions_total" in families
        assert client.health()["ok"]
        client.wait(job_id, timeout=300.0)


def test_healthz_reports_storage_stats(tmp_path):
    config = ServeConfig(
        workers=0, quota=0,
        cache_dir=str(tmp_path / "cache"),
        trace_store=str(tmp_path / "traces"),
    )
    with BackgroundDaemon(config) as url:
        client = ServeClient(url, timeout=30.0)
        storage = client.health()["storage"]
        assert storage["results"]["entries"] == 0
        client.run(_request(), timeout=300.0)
        storage = client.health()["storage"]
        assert storage["results"]["entries"] == 2
        assert storage["results"]["bytes"] > 0
        assert storage["traces"]["artifacts"] >= 1
    # Disabled stores report None, not zeros.
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        storage = ServeClient(url).health()["storage"]
        assert storage == {"results": None, "traces": None}


# ----------------------------------------------------------------------
# error mapping

def test_error_codes(daemon):
    # 404: unknown job (well-formed id), unknown route.
    status, payload = daemon._request("GET", "/v1/jobs/" + "0" * 16)
    assert status == 404 and "unknown job" in payload["error"]
    status, _ = daemon._request("GET", "/v1/nope")
    assert status == 404
    # 405: wrong method.
    status, _ = daemon._request("POST", "/v1/healthz", {})
    assert status == 405
    status, _ = daemon._request("GET", "/v1/shutdown")
    assert status == 405
    # 400: schema violations.
    status, payload = daemon._request("POST", "/v1/submit", {"workload": "gups"})
    assert status == 400 and "schema version" in payload["error"]
    bad = _request().to_dict()
    bad["workload"] = "doom"
    status, payload = daemon._request("POST", "/v1/submit", bad)
    assert status == 400 and "unknown workload" in payload["error"]
    bad = _request().to_dict()
    bad["turbo"] = True
    status, payload = daemon._request("POST", "/v1/submit", bad)
    assert status == 400 and "unknown field" in payload["error"]
    # Every error body carries the schema version.
    assert payload["schema"] == SCHEMA_VERSION


def test_malformed_http(daemon):
    host, port = daemon.base_url[len("http://"):].split(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=10.0)
    connection.request(
        "POST", "/v1/submit", body=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    assert response.status == 400
    assert b"not JSON" in response.read()
    connection.close()


def test_result_before_done_is_409(daemon, monkeypatch):
    def slow_execute(unit, artifact=None):
        time.sleep(0.3)
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)
    job_id = daemon.submit(_request(configs=("nocstar",)))["job_id"]
    status, payload = daemon._request("GET", f"/v1/jobs/{job_id}/result")
    assert status == 409
    daemon.wait(job_id, timeout=300.0)
    daemon.result(job_id)  # now succeeds


def test_quota_maps_to_429(monkeypatch):
    def slow_execute(unit, artifact=None):
        time.sleep(0.3)
        return slow_execute.real(unit, artifact)

    slow_execute.real = jobs_mod.execute_unit
    monkeypatch.setattr(jobs_mod, "execute_unit", slow_execute)
    with BackgroundDaemon(ServeConfig(workers=0, quota=1)) as url:
        client = ServeClient(url, timeout=30.0)
        first = client.submit(_request(seed=1, configs=("nocstar",)))
        status, payload = client._request(
            "POST", "/v1/submit",
            _request(seed=2, configs=("nocstar",)).to_dict(),
        )
        assert status == 429 and payload["quota"] == 1
        with pytest.raises(ServeError) as excinfo:
            client.run(_request(seed=3, configs=("nocstar",)))
        assert excinfo.value.status == 429
        client.wait(first["job_id"], timeout=300.0)


def test_failed_job_maps_to_500(monkeypatch):
    def boom(unit, artifact=None):
        raise RuntimeError("sabotaged engine")

    monkeypatch.setattr(jobs_mod, "execute_unit", boom)
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        client = ServeClient(url, timeout=30.0)
        job_id = client.submit(_request(configs=("nocstar",)))["job_id"]
        status = client.wait(job_id, timeout=300.0)
        assert status.state == "failed"
        http_status, payload = client._request(
            "GET", f"/v1/jobs/{job_id}/result"
        )
        assert http_status == 500 and "sabotaged" in payload["error"]


# ----------------------------------------------------------------------
# lifecycle

def test_shutdown_endpoint_stops_daemon():
    background = BackgroundDaemon(ServeConfig(workers=0, quota=0))
    url = background.start()
    client = ServeClient(url, timeout=10.0)
    assert client.health()["ok"]
    assert client.shutdown()["stopping"]
    background._thread.join(timeout=10.0)
    with pytest.raises(ServeError):
        client.health()
    background.stop()  # idempotent


def test_ephemeral_ports_isolate_daemons():
    with BackgroundDaemon(ServeConfig(workers=0)) as url_a:
        with BackgroundDaemon(ServeConfig(workers=0)) as url_b:
            assert url_a != url_b
            assert ServeClient(url_a).health()["ok"]
            assert ServeClient(url_b).health()["ok"]
