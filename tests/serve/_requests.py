"""The serve-side differential corpus: the wire-expressible projection
of ``tests/_corpus.py``.

The engine differential corpus spans every interconnect model, faults,
observability combinations, and pathological traffic.  Storm/shootdown
schedules and pinned fault plans have no wire form (deliberately — the
schema carries only registry names and scalar knobs), so the serving
corpus mirrors the same diversity through what :class:`SubmitRequest`
can express: all ten registered configurations, fault rates,
metrics/trace flags, superpage and SMT variation, and multi-config
lineups.
"""

from repro.serve.schema import SubmitRequest


def serve_corpus():
    """Sixteen ``(name, SubmitRequest)`` pairs, cheap but diverse."""
    base = dict(cores=8, accesses_per_core=400, seed=13)
    entries = [
        ("private-gups", dict(workload="gups", configs=("private",))),
        ("monolithic-mesh", dict(workload="graph500", configs=("monolithic",))),
        ("monolithic-smart",
         dict(workload="graph500", configs=("monolithic-smart",))),
        ("distributed-mesh", dict(workload="canneal", configs=("distributed",))),
        ("distributed-bus", dict(workload="gups", configs=("distributed-bus",))),
        ("distributed-fbfly-wide",
         dict(workload="olio", configs=("distributed-fbfly-wide",))),
        ("distributed-fbfly-narrow",
         dict(workload="xsbench", configs=("distributed-fbfly-narrow",))),
        ("nocstar", dict(workload="graph500", configs=("nocstar",))),
        ("nocstar-4k",
         dict(workload="gups", configs=("nocstar",), superpages=False)),
        ("nocstar-ideal", dict(workload="olio", configs=("nocstar-ideal",))),
        ("ideal", dict(workload="canneal", configs=("ideal",))),
        ("nocstar-observed",
         dict(workload="graph500", configs=("nocstar",),
              metrics=True, trace=True)),
        ("distributed-faulty-observed",
         dict(workload="gups", configs=("distributed",),
              fault_rate=0.1, metrics=True)),
        ("nocstar-faulty",
         dict(workload="olio", configs=("nocstar",),
              fault_rate=0.1, fault_drop_prob=0.05)),
        ("lineup-pair", dict(workload="gups", configs=("private", "nocstar"))),
        ("lineup-smt",
         dict(workload="olio",
              configs=("private", "distributed", "nocstar"), smt=2)),
    ]
    return [
        (name, SubmitRequest(**{**base, **kwargs}))
        for name, kwargs in entries
    ]
