"""Wire-schema contract: validation, versioning, identity, payloads."""

import pickle

import pytest

from repro.serve.schema import (
    SCHEMA_VERSION,
    JobResult,
    JobStatus,
    SchemaError,
    SubmitRequest,
    decode_result,
    encode_result,
)
from repro.sim.engine import simulate
from repro.sim import configs as cfg
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


def _request(**overrides):
    base = dict(workload="gups", configs=("private", "nocstar"),
                cores=4, accesses_per_core=200, seed=3)
    base.update(overrides)
    return SubmitRequest(**base)


def _result():
    workload = build_multithreaded(
        get_workload("gups"), 4, accesses_per_core=200, seed=3
    )
    return simulate(cfg.nocstar(4), workload)


# ----------------------------------------------------------------------
# SubmitRequest

def test_submit_round_trip():
    request = _request(metrics=True, fault_rate=0.05, client_id="alice",
                       service_class="batch")
    assert SubmitRequest.from_dict(request.to_dict()) == request


def test_submit_rejects_wrong_schema_version():
    payload = _request().to_dict()
    payload["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(SchemaError, match="schema version"):
        SubmitRequest.from_dict(payload)
    with pytest.raises(SchemaError, match="schema version"):
        SubmitRequest.from_dict({"workload": "gups"})  # missing entirely


def test_submit_rejects_unknown_fields():
    payload = _request().to_dict()
    payload["turbo"] = True
    with pytest.raises(SchemaError, match="unknown field"):
        SubmitRequest.from_dict(payload)


@pytest.mark.parametrize(
    "overrides",
    [
        dict(workload=""),
        dict(configs=()),
        dict(cores=0),
        dict(accesses_per_core=0),
        dict(smt=0),
        dict(fault_rate=1.5),
        dict(fault_drop_prob=-0.1),
        dict(service_class="best-effort"),
        dict(client_id=""),
    ],
)
def test_submit_validation(overrides):
    with pytest.raises(SchemaError):
        _request(**overrides)


def test_submit_configs_must_be_names():
    payload = _request().to_dict()
    payload["configs"] = [1, 2]
    with pytest.raises(SchemaError, match="list of names"):
        SubmitRequest.from_dict(payload)


def test_job_id_ignores_serving_fields():
    """client_id/service_class never reach the simulator, so two
    submissions differing only there must coalesce onto one job."""
    a = _request(client_id="alice", service_class="interactive")
    b = _request(client_id="bob", service_class="batch")
    assert a.job_id() == b.job_id()
    assert "client_id" not in a.canonical()
    assert "service_class" not in a.canonical()


def test_job_id_tracks_outcome_fields():
    assert _request().job_id() != _request(seed=4).job_id()
    assert _request().job_id() != _request(metrics=True).job_id()


def test_trace_context_round_trip():
    context = {"trace_id": "a" * 16, "parent_id": "b" * 16}
    request = _request(trace_context=context)
    assert request.trace_context == context
    assert SubmitRequest.from_dict(request.to_dict()) == request
    # Absent context stays absent on the wire.
    assert "trace_context" not in _request().to_dict()


def test_trace_context_never_reaches_job_identity():
    """The purity invariant: tracing a submission must not change what
    it simulates or which job it coalesces onto."""
    traced = _request(trace_context={"trace_id": "f" * 16})
    untraced = _request()
    assert traced.job_id() == untraced.job_id()
    assert "trace_context" not in traced.canonical()


@pytest.mark.parametrize(
    "context",
    [
        "abc",                                   # not an object
        {"trace_id": "abc", "span": "x"},        # unknown key
        {"parent_id": "abc"},                    # missing trace_id
        {"trace_id": ""},                        # empty value
    ],
)
def test_trace_context_validation(context):
    with pytest.raises(SchemaError, match="trace_context"):
        _request(trace_context=context)


def test_scenario_rejects_unknown_names():
    with pytest.raises(SchemaError, match="unknown config"):
        _request(configs=("hyperloop",)).scenario()
    with pytest.raises(SchemaError, match="unknown workload"):
        _request(workload="doom").scenario()


def test_scenario_shape():
    request = _request(fault_rate=0.1, trace=True)
    scenario = request.scenario()
    assert tuple(c.name for c in scenario.configurations) == request.configs
    assert scenario.baseline_name == "private"
    assert scenario.trace and scenario.faults is not None


# ----------------------------------------------------------------------
# result payloads

def test_result_encode_decode_byte_identical():
    result = _result()
    decoded = decode_result(encode_result(result))
    assert pickle.dumps(decoded) == pickle.dumps(result)


def test_decode_result_rejects_garbage():
    with pytest.raises(SchemaError):
        decode_result({"summary": {}})
    with pytest.raises(SchemaError):
        decode_result({"payload": "not base64 pickle!!"})


def test_job_result_round_trip_and_speedup():
    workload = build_multithreaded(
        get_workload("gups"), 4, accesses_per_core=200, seed=3
    )
    results = {
        "private": simulate(cfg.private(4), workload),
        "nocstar": simulate(cfg.nocstar(4), workload),
    }
    job = JobResult(job_id="abc", workload="gups", baseline="private",
                    results=results)
    back = JobResult.from_dict(job.to_dict())
    assert back.speedup("nocstar") == job.speedup("nocstar")
    for name in results:
        assert pickle.dumps(back.results[name]) == \
            pickle.dumps(results[name])


def test_job_status_round_trip():
    status = JobStatus(
        job_id="abc", state="running", workload="gups",
        configs=("private", "nocstar"), service_class="interactive",
        clients=("alice", "bob"), units_total=2, units_done=1,
        units_cached=0, queued_s=0.5, run_s=1.5,
        telemetry={"engine": 1, "units": []},
    )
    back = JobStatus.from_dict(status.to_dict())
    assert back == status
    assert not back.done
    assert JobStatus.from_dict(
        {**status.to_dict(), "state": "done"}
    ).done


def test_job_status_missing_field():
    payload = {"schema": SCHEMA_VERSION, "job_id": "abc"}
    with pytest.raises(SchemaError, match="missing field"):
        JobStatus.from_dict(payload)
