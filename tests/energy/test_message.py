"""Per-message energy breakdown (Fig 11b)."""

import pytest

from repro.energy.message import DESIGNS, message_energy_pj


def test_all_designs():
    for design in DESIGNS:
        breakdown = message_energy_pj(design, hops=6)
        assert breakdown["total"] > 0


def test_unknown_design_rejected():
    with pytest.raises(ValueError):
        message_energy_pj("ring", 4)


def test_negative_hops_rejected():
    with pytest.raises(ValueError):
        message_energy_pj("nocstar", -1)


def test_monolithic_sram_dominates():
    mono = message_energy_pj("monolithic", hops=0, num_cores=32)
    dist = message_energy_pj("distributed", hops=0)
    assert mono["sram"] > 4 * dist["sram"]


def test_fig11b_ordering_at_every_hop_count():
    """M > D > N in total energy, at all plotted hop counts."""
    for hops in (0, 1, 2, 4, 6, 8, 10, 12):
        mono = message_energy_pj("monolithic", hops)["total"]
        dist = message_energy_pj("distributed", hops)["total"]
        noc = message_energy_pj("nocstar", hops)["total"]
        assert mono > dist > noc


def test_nocstar_control_premium_nonzero():
    noc = message_energy_pj("nocstar", hops=14)
    dist = message_energy_pj("distributed", hops=14)
    assert noc["control"] > dist["control"] == 0.0


def test_nocstar_switch_cheaper_than_buffered_router():
    noc = message_energy_pj("nocstar", hops=8)
    dist = message_energy_pj("distributed", hops=8)
    assert noc["switch"] < dist["switch"]
    assert noc["link"] == dist["link"]


def test_energy_monotone_in_hops():
    for design in DESIGNS:
        totals = [message_energy_pj(design, h)["total"] for h in range(13)]
        assert totals == sorted(totals)
