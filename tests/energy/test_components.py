"""Fig 9 constants and parameter sanity."""

from repro.energy import components as comp


def test_fig9_numbers():
    assert comp.SWITCH_POWER_MW == 0.43
    assert comp.SWITCH_AREA_MM2 == 0.0022
    assert comp.ARBITERS_POWER_MW == 2.39
    assert comp.SRAM_SLICE_POWER_MW == 10.91
    assert comp.SRAM_SLICE_AREA_MM2 == 0.4646


def test_interconnect_under_one_percent_of_sram_area():
    """Fig 9: switch + arbiters are <1% of the slice SRAM's area."""
    overhead = comp.SWITCH_AREA_MM2 + comp.ARBITERS_AREA_MM2
    assert overhead < 0.015 * comp.SRAM_SLICE_AREA_MM2


def test_arbiters_are_the_power_hungry_component():
    """§III-B3: the link arbiters dominate the interconnect power."""
    assert comp.ARBITERS_POWER_MW > comp.SWITCH_POWER_MW


def test_clock_conversion():
    # 2 GHz: 1 mW for one cycle (0.5 ns) = 0.5 pJ.
    assert comp.PJ_PER_MW_CYCLE == 0.5


def test_default_params_ordering():
    p = comp.DEFAULT_PARAMS
    assert p.nocstar_switch_hop_pj < p.router_hop_pj
    assert p.cache_pj["dram"] > p.cache_pj["llc"] > p.cache_pj["l2"]
