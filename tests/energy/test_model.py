"""Energy accounting model."""

import pytest

from repro.energy.components import PJ_PER_MW_CYCLE
from repro.energy.model import EnergyModel, percent_energy_saved
from repro.mem import sram


def test_empty_model_is_zero():
    assert EnergyModel().total_pj == 0.0


def test_l1_lookups_accumulate():
    model = EnergyModel()
    model.l1_lookup(100)
    assert model.breakdown.sram_pj == pytest.approx(100 * 1.0)


def test_l2_lookup_scales_with_array_size():
    small, big = EnergyModel(), EnergyModel()
    small.l2_lookup(1024, 10)
    big.l2_lookup(32 * 1024, 10)
    assert big.breakdown.sram_pj > small.breakdown.sram_pj
    assert small.breakdown.sram_pj == pytest.approx(
        10 * sram.read_energy_pj(1024)
    )


def test_nocstar_hops_cheaper_than_mesh_hops():
    mesh, nocstar = EnergyModel(), EnergyModel()
    mesh.mesh_hops(100)
    nocstar.nocstar_hops(100)
    assert nocstar.total_pj < mesh.total_pj
    assert nocstar.breakdown.link_pj == mesh.breakdown.link_pj  # same wires
    assert nocstar.breakdown.switch_pj < mesh.breakdown.switch_pj


def test_control_premium():
    model = EnergyModel()
    model.control(14)  # 14 simultaneous arbitrations (§III-D example)
    assert model.breakdown.control_pj == pytest.approx(14 * 0.3)


def test_walk_levels():
    model = EnergyModel()
    model.walk_levels(["pwc", "l1", "llc", "dram"])
    assert model.breakdown.walk_pj == pytest.approx(2 + 20 + 800 + 15_000)


def test_dram_dominates_walk_energy():
    """The paper: walk cache/memory references are orders of magnitude
    above TLB lookups."""
    model = EnergyModel()
    model.walk_levels(["dram"])
    lookup = EnergyModel()
    lookup.l2_lookup(1024, 1)
    assert model.total_pj > 20 * lookup.total_pj


def test_static_energy():
    model = EnergyModel(static_power_mw=10.0)
    model.finalize(cycles=1000)
    assert model.breakdown.static_pj == pytest.approx(
        10.0 * PJ_PER_MW_CYCLE * 1000
    )


def test_breakdown_total():
    model = EnergyModel(static_power_mw=1.0)
    model.l1_lookup(1)
    model.mesh_hops(1)
    model.control(1)
    model.walk_levels(["l1"])
    model.finalize(10)
    d = model.breakdown.as_dict()
    assert d["total"] == pytest.approx(
        d["sram"] + d["link"] + d["switch"] + d["control"] + d["walk"]
        + d["static"]
    )


def test_percent_energy_saved():
    assert percent_energy_saved(100.0, 40.0) == pytest.approx(60.0)
    assert percent_energy_saved(100.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        percent_energy_saved(0.0, 1.0)
