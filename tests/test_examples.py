"""Example scripts: importable, with a main() entry point.

Executing them end-to-end takes minutes (they are demos, not tests),
so here we verify they parse, import against the current API, and
expose the expected entry point.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart", "timeline", "interconnect_explorer",
        "multiprogrammed", "tlb_storm", "extensions_tour",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # import-time errors fail here
    assert callable(getattr(module, "main", None))
