"""Per-link arbiters: rotating static priority."""

import pytest

from repro.core.link_arbiter import LinkArbiter, control_fanout


def test_rejects_no_requesters():
    with pytest.raises(ValueError):
        LinkArbiter(0)


def test_single_requester_always_wins():
    arbiter = LinkArbiter(8)
    assert arbiter.grant(0, [5]) == 5


def test_empty_request_set():
    assert LinkArbiter(8).grant(0, []) is None


def test_priority_is_static_within_rotation_window():
    arbiter = LinkArbiter(8, rotation_cycles=1000)
    for cycle in range(0, 1000, 100):
        assert arbiter.grant(cycle, [3, 5]) == 3


def test_priority_rotates_round_robin():
    arbiter = LinkArbiter(4, rotation_cycles=10)
    # Base 0 at cycle 0, base 1 at cycle 10, ...
    assert arbiter.grant(0, [1, 3]) == 1
    assert arbiter.grant(10, [0, 2]) == 2  # base=1: 2 closer than 0
    assert arbiter.grant(20, [0, 1]) == 0  # base=2: 0 at dist 2, 1 at 3


def test_wraparound_distance():
    arbiter = LinkArbiter(4, rotation_cycles=10)
    assert arbiter.grant(30, [0, 1]) == 0  # base=3: 0 at dist 1


def test_conflicts_counted():
    arbiter = LinkArbiter(8)
    arbiter.grant(0, [1, 2, 3])
    assert arbiter.grants == 1
    assert arbiter.conflicts == 2


def test_fanout_formula_matches_paper():
    """(cores per row - 1) + (rows - 1) * columns (§III-B2)."""
    assert control_fanout(rows=4, cols=4) == 3 + 3 * 4
    assert control_fanout(rows=8, cols=8) == 7 + 7 * 8


def test_fanout_rejects_bad_dims():
    with pytest.raises(ValueError):
        control_fanout(0, 4)


def test_no_starvation_over_full_rotation():
    """Every requester wins at least once across a full priority cycle."""
    arbiter = LinkArbiter(4, rotation_cycles=1)
    winners = {arbiter.grant(cycle, [0, 1, 2, 3]) for cycle in range(4)}
    assert winners == {0, 1, 2, 3}
