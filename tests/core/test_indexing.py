"""Slice-indexing strategies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.indexing import (
    asid_mix_index,
    get_indexer,
    modulo_index,
    xor_fold_index,
)


def test_modulo_is_low_bits():
    assert modulo_index(0, 0x1234, 16) == 4


def test_get_indexer_known_and_unknown():
    assert get_indexer("modulo") is modulo_index
    with pytest.raises(KeyError, match="xor-fold"):
        get_indexer("fancy")


@given(
    st.sampled_from([4, 8, 16, 32, 64]),
    st.integers(min_value=0, max_value=1 << 36),
    st.integers(min_value=0, max_value=64),
)
def test_all_indexers_in_range(slices, page, asid):
    for name in ("modulo", "xor-fold", "asid-mix"):
        index = get_indexer(name)(asid, page, slices)
        assert 0 <= index < slices


def test_xor_fold_breaks_power_of_two_strides():
    """Pages strided by the slice count alias totally under modulo but
    spread under xor-fold."""
    slices = 16
    pages = [base * slices for base in range(256)]
    modulo_homes = {modulo_index(0, p, slices) for p in pages}
    fold_homes = {xor_fold_index(0, p, slices) for p in pages}
    assert len(modulo_homes) == 1
    assert len(fold_homes) == slices


def test_xor_fold_balanced_on_sequential_pages():
    slices = 8
    counts = [0] * slices
    for page in range(4096):
        counts[xor_fold_index(0, page, slices)] += 1
    assert max(counts) - min(counts) <= 64  # near-uniform


def test_asid_mix_decorrelates_processes():
    """Two processes with identical layouts home differently."""
    slices = 16
    pages = list(range(100, 200))
    a = [asid_mix_index(1, p, slices) for p in pages]
    b = [asid_mix_index(2, p, slices) for p in pages]
    assert a != b


def test_asid_mix_deterministic():
    assert asid_mix_index(3, 999, 32) == asid_mix_index(3, 999, 32)
