"""NOCSTAR configuration validation."""

import pytest

from repro.core.config import NocstarConfig, ONE_WAY, ROUND_TRIP


def test_defaults_match_paper():
    config = NocstarConfig()
    assert config.hpc_max == 16
    assert config.acquire == ONE_WAY
    assert config.priority_rotation_cycles == 1000
    assert config.slice_entries == 920  # area-normalised Table II


def test_round_trip_mode():
    assert NocstarConfig(acquire=ROUND_TRIP).acquire == ROUND_TRIP


def test_rejects_bad_hpc():
    with pytest.raises(ValueError):
        NocstarConfig(hpc_max=0)


def test_rejects_unknown_acquire():
    with pytest.raises(ValueError):
        NocstarConfig(acquire="both-ways")


def test_rejects_bad_rotation():
    with pytest.raises(ValueError):
        NocstarConfig(priority_rotation_cycles=0)


def test_frozen():
    config = NocstarConfig()
    with pytest.raises(Exception):
        config.hpc_max = 8
