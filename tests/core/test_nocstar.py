"""The NOCSTAR interconnect: timing, contention, acquisition modes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import NocstarConfig, ROUND_TRIP
from repro.core.nocstar import NocstarInterconnect
from repro.noc.topology import MeshTopology


def make(tiles=16, **kw):
    return NocstarInterconnect(MeshTopology(tiles), NocstarConfig(**kw))


def test_local_message_is_immediate():
    ic = make()
    t = ic.send(3, 3, now=10)
    assert t.ready == 10
    assert t.hops == 0 and t.setup_retries == 0


def test_uncontended_remote_is_setup_plus_one_cycle():
    """Fig 10: 1 cycle path setup + 1 cycle traversal, any distance."""
    ic = make(64)
    far = ic.send(0, 63, now=0)  # 14 hops, HPCmax=16
    assert far.ready == 2
    assert far.traversal_cycles == 1


def test_speculative_setup_saves_a_cycle():
    ic = make()
    assert ic.send(0, 5, now=0, speculative_setup=True).ready == 1


def test_hpc_max_pipelining():
    ic = make(64, hpc_max=4)
    t = ic.send(0, 63, now=0)  # 14 hops -> ceil(14/4) = 4 cycles
    assert t.traversal_cycles == 4
    assert t.ready == 5


def test_conflicting_paths_retry():
    ic = make()
    a = ic.send(0, 3, now=0)
    b = ic.send(0, 3, now=0)  # identical path, same cycle
    assert a.setup_retries == 0
    assert b.setup_retries >= 1
    assert b.ready > a.ready


def test_disjoint_paths_no_interference():
    ic = make()
    ic.send(0, 3, now=0)
    t = ic.send(12, 15, now=0)
    assert t.setup_retries == 0


def test_partial_overlap_conflicts():
    ic = make()
    ic.send(0, 2, now=0)  # uses links (0,1),(1,2)
    t = ic.send(1, 3, now=0)  # needs (1,2),(2,3)
    assert t.setup_retries >= 1


def test_out_of_order_requests_do_not_false_conflict():
    """A reservation at cycle 500 must not delay a message at cycle 100
    (the engine's bounded run-ahead produces such orderings)."""
    ic = make()
    ic.send(0, 3, now=500)
    t = ic.send(0, 3, now=100)
    assert t.setup_retries == 0
    assert t.ready == 102


def test_send_over_held_path_is_a_protocol_error():
    """Round-trip holds must be released before the next arbitration —
    a send over a held link can never be satisfied (the release time is
    unknown), so it raises instead of deadlocking."""
    ic = make()
    held = ic.send(0, 3, now=0, hold=True)
    with pytest.raises(RuntimeError, match="held"):
        ic.send(0, 3, now=5)
    ic.release(held.links, at=20)
    free = ic.send(0, 3, now=30)
    assert free.setup_retries == 0


def test_release_backfills_occupancy():
    ic = make()
    held = ic.send(0, 3, now=0, hold=True)
    ic.release(held.links, at=10)
    # A late-arriving message stamped inside the held window still sees it.
    inside = ic.send(0, 3, now=4)
    assert inside.ready >= 10


def test_round_trip_api():
    ic = make(16, acquire=ROUND_TRIP)
    ready, retries = ic.round_trip(0, 5, now=0, service_cycles=9)
    # setup(1) + traverse(1) + service(9) + return traverse(1)
    assert ready == 12
    assert retries == 0


def test_one_way_round_trip_api():
    ic = make(16)
    ready, retries = ic.round_trip(0, 5, now=0, service_cycles=9)
    assert ready == 12  # response setup speculative during the lookup
    assert retries == 0


def test_control_requests_counted_per_retry():
    ic = make()
    ic.send(0, 3, now=0)
    before = ic.control_requests
    blocked = ic.send(0, 3, now=0)
    added = ic.control_requests - before
    assert added == 3 * (blocked.setup_retries + 1)


def test_statistics():
    ic = make()
    ic.send(0, 3, now=0)
    ic.send(0, 3, now=0)
    ic.send(5, 5, now=0)
    assert ic.messages == 3
    assert ic.local_messages == 1
    assert 0 < ic.no_contention_fraction < 1
    assert ic.mean_setup_retries > 0


def test_control_wires_formula():
    ic = make(64)  # 8x8
    assert ic.control_wires_per_core() == (8 - 1) + (8 - 1) * 8


def test_reset_clears_state():
    ic = make()
    ic.send(0, 3, now=0)
    ic.reset()
    assert ic.messages == 0
    assert ic.send(0, 3, now=0).setup_retries == 0


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=300),
        ),
        max_size=60,
    )
)
def test_no_two_messages_share_a_link_cycle(messages):
    """Fundamental circuit-switching invariant: each (link, cycle) pair
    carries at most one message."""
    ic = make(16)
    usage = {}
    for src, dst, now in messages:
        t = ic.send(src, dst, now)
        if not t.links:
            continue
        start = t.ready - t.traversal_cycles
        for link in t.links:
            for cycle in range(start, t.ready):
                key = (link, cycle)
                assert key not in usage, "link double-booked"
                usage[key] = (src, dst)


@settings(max_examples=30)
@given(
    st.integers(min_value=2, max_value=64),
    st.data(),
)
def test_ready_time_bounds(n, data):
    """Latency is always >= the uncontended minimum and the traversal
    duration matches ceil(hops / hpc_max)."""
    ic = NocstarInterconnect(MeshTopology(n), NocstarConfig(hpc_max=4))
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    t = ic.send(src, dst, now=0)
    hops = ic.topology.hops(src, dst)
    expected_dur = -(-hops // 4) if hops else 0
    assert t.traversal_cycles == expected_dur
    if hops:
        assert t.ready >= 1 + expected_dur
