"""Simulatable bus and flattened-butterfly networks."""

import pytest

from repro.noc.bus import BusNetwork
from repro.noc.fbfly import FlattenedButterfly
from repro.noc.topology import MeshTopology


def test_bus_idle_latency():
    bus = BusNetwork(MeshTopology(16))
    t = bus.send(0, 15, now=10)
    assert t.arrival == 12  # 2-cycle transfer, no queueing


def test_bus_serialises_everything():
    bus = BusNetwork(MeshTopology(16))
    a = bus.send(0, 1, now=0)
    b = bus.send(14, 15, now=0)  # disjoint endpoints still queue!
    assert b.arrival == a.arrival + 2
    assert b.queue_cycles == 2


def test_bus_local_message_free():
    bus = BusNetwork(MeshTopology(16))
    assert bus.send(3, 3, 7).arrival == 7


def test_bus_out_of_order_safe():
    bus = BusNetwork(MeshTopology(16))
    bus.send(0, 1, now=100)
    t = bus.send(2, 3, now=0)
    assert t.queue_cycles == 0


def test_bus_validation():
    with pytest.raises(ValueError):
        BusNetwork(MeshTopology(4), transfer_cycles=0)


def test_fbfly_two_hops_max():
    fb = FlattenedButterfly(MeshTopology(64))
    for src, dst in ((0, 63), (7, 56), (0, 7), (0, 56)):
        assert len(fb.route(src, dst)) <= 2


def test_fbfly_wide_latency():
    fb = FlattenedButterfly(MeshTopology(64))
    t = fb.send(0, 63, now=0)  # 2 express hops
    assert t.hops == 2
    assert t.arrival == 4  # 2 x (router + 1-cycle link)


def test_fbfly_narrow_pays_serialization():
    wide = FlattenedButterfly(MeshTopology(64))
    narrow = FlattenedButterfly(MeshTopology(64), narrow=True)
    assert (
        narrow.send(0, 63, 0).arrival
        == wide.send(0, 63, 0).arrival + 2 * 4
    )


def test_fbfly_same_row_single_hop():
    fb = FlattenedButterfly(MeshTopology(64))
    t = fb.send(0, 7, now=0)
    assert t.hops == 1


def test_fbfly_link_contention():
    fb = FlattenedButterfly(MeshTopology(64))
    a = fb.send(0, 7, now=0)
    b = fb.send(0, 7, now=0)  # same express link, same cycle
    assert b.arrival > a.arrival
    assert b.queue_cycles > 0


def test_fbfly_narrow_contention_worse():
    """Narrow links occupy 5 cycles per packet, so back-to-back
    packets queue much longer."""
    wide = FlattenedButterfly(MeshTopology(64))
    narrow = FlattenedButterfly(MeshTopology(64), narrow=True)
    for _ in range(4):
        wq = wide.send(0, 7, now=0).queue_cycles
        nq = narrow.send(0, 7, now=0).queue_cycles
    assert nq > wq


def test_fbfly_local_free():
    fb = FlattenedButterfly(MeshTopology(16))
    assert fb.send(5, 5, 3).arrival == 3
