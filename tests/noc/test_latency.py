"""Analytic NoC latency formula (T = H(tr+tw) + sum tc + Ts)."""

import pytest

from repro.noc import latency as lat


def test_mesh_two_cycles_per_hop():
    assert lat.MESH.latency(5) == 10


def test_zero_hops_only_serialization():
    assert lat.MESH.latency(0) == 0
    assert lat.FBFLY_NARROW.latency(0) == 4


def test_contention_adds_linearly():
    assert lat.MESH.latency(3, contention=[1, 0, 2]) == 6 + 3


def test_negative_hops_rejected():
    with pytest.raises(ValueError):
        lat.MESH.latency(-1)


def test_smart_bypass_compresses_hops():
    smart = lat.smart_params(8)
    assert smart.latency(8) == 1 + 1  # setup + one bypass segment
    assert smart.latency(9) == 1 + 2


def test_nocstar_single_cycle_across_chip():
    nocstar = lat.nocstar_params(16)
    # 14 hops (64-core diameter) in one cycle plus one setup cycle.
    assert nocstar.latency(14) == 2


def test_nocstar_pipelined_when_hpc_exceeded():
    nocstar = lat.nocstar_params(4)
    assert nocstar.latency(14) == 1 + 4  # ceil(14/4) = 4 data cycles


def test_narrow_fbfly_pays_serialization():
    wide = lat.FBFLY_WIDE.latency(lat.fbfly_hops(6))
    narrow = lat.FBFLY_NARROW.latency(lat.fbfly_hops(6))
    assert narrow == wide + 4


def test_fbfly_hops_capped_at_dimensions():
    assert lat.fbfly_hops(10) == 2
    assert lat.fbfly_hops(1) == 1
    assert lat.fbfly_hops(0) == 0


def test_fig11a_ordering_at_12_hops():
    """Fig 11a: monolithic > distributed > NOCSTAR at every hop count
    (per-message latency including destination SRAM lookup)."""
    from repro.mem import sram

    hops = 12
    mono = sram.lookup_cycles(32 * 1024) + lat.MESH.latency(hops)
    dist = sram.lookup_cycles(1024) + lat.MESH.latency(hops)
    noc4 = sram.lookup_cycles(920) + lat.nocstar_params(4).latency(hops)
    noc16 = sram.lookup_cycles(920) + lat.nocstar_params(16).latency(hops)
    assert mono > dist > noc4 > noc16
    assert mono >= 35  # the paper's curve tops out near 40
    assert noc16 <= 13
