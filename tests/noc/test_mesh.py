"""Mesh network models."""

from repro.noc.mesh import ContendedMesh, ContentionFreeMesh
from repro.noc.topology import MeshTopology


def test_contention_free_latency_deterministic():
    mesh = ContentionFreeMesh(MeshTopology(16))
    t = mesh.send(0, 15, now=100)
    assert t.hops == 6
    assert t.arrival == 100 + 12


def test_contention_free_local_is_free():
    mesh = ContentionFreeMesh(MeshTopology(16))
    assert mesh.send(3, 3, now=5).arrival == 5


def test_contention_free_counts_traffic():
    mesh = ContentionFreeMesh(MeshTopology(16))
    mesh.send(0, 1, 0)
    mesh.send(0, 2, 0)
    assert mesh.messages == 2
    assert mesh.total_hops == 3


def test_contended_single_message_matches_free():
    free = ContentionFreeMesh(MeshTopology(16))
    contended = ContendedMesh(MeshTopology(16))
    assert contended.send(0, 15, 0).arrival == free.send(0, 15, 0).arrival


def test_contended_conflicting_messages_queue():
    mesh = ContendedMesh(MeshTopology(16))
    a = mesh.send(0, 3, now=0)
    b = mesh.send(0, 3, now=0)  # same path, same time
    assert b.arrival > a.arrival
    assert b.queue_cycles > 0


def test_contended_disjoint_paths_do_not_interact():
    mesh = ContendedMesh(MeshTopology(16))
    a = mesh.send(0, 1, now=0)
    b = mesh.send(14, 15, now=0)
    assert a.queue_cycles == 0 and b.queue_cycles == 0


def test_traversal_reports_links():
    mesh = ContendedMesh(MeshTopology(16))
    t = mesh.send(0, 5, 0)
    assert len(t.links) == t.hops == 2
