"""Cycle-accurate synthetic traffic (the Fig 11c experiment)."""

import pytest

from repro.noc.synthetic import run_mesh_traffic, run_nocstar_traffic
from repro.noc.topology import MeshTopology


@pytest.fixture(scope="module")
def topo():
    return MeshTopology(64)


def test_low_load_latency_near_ideal(topo):
    result = run_nocstar_traffic(topo, injection_rate=0.01, cycles=2000)
    # Ideal is 2 cycles (setup + traversal); allow small contention.
    assert result.mean_latency < 3.0
    assert result.no_contention_fraction > 0.9


def test_latency_grows_with_injection(topo):
    low = run_nocstar_traffic(topo, 0.02, cycles=2000)
    high = run_nocstar_traffic(topo, 0.25, cycles=2000)
    assert high.mean_latency > low.mean_latency
    assert high.no_contention_fraction < low.no_contention_fraction


def test_paper_operating_point(topo):
    """Fig 11c: at injection 0.1 (one message per 10 cycles per core —
    high for TLB traffic), mean latency stays within ~3 cycles."""
    result = run_nocstar_traffic(topo, 0.10, cycles=3000)
    assert result.mean_latency <= 4.0


def test_nocstar_beats_mesh_at_all_loads(topo):
    for rate in (0.02, 0.10):
        nocstar = run_nocstar_traffic(topo, rate, cycles=2000)
        mesh = run_mesh_traffic(topo, rate, cycles=2000)
        assert nocstar.mean_latency < mesh.mean_latency


def test_mesh_latency_close_to_two_per_hop(topo):
    result = run_mesh_traffic(topo, 0.01, cycles=2000)
    # Mean uniform hop distance on an 8x8 mesh is ~5.3 -> ~10.7 cycles.
    assert 8.0 <= result.mean_latency <= 14.0


def test_deliveries_track_offered_load(topo):
    result = run_nocstar_traffic(topo, 0.05, cycles=2000, seed=3)
    expected = 0.05 * 64 * 2000
    assert result.delivered >= 0.8 * expected


def test_deterministic_under_seed(topo):
    a = run_nocstar_traffic(topo, 0.05, cycles=500, seed=9)
    b = run_nocstar_traffic(topo, 0.05, cycles=500, seed=9)
    assert a == b
