"""Property tests for the precomputed RouteCache tables.

The cache claims its tables are pure functions of the topology — every
entry must agree with what the live models compute per send, and any
injected link failure must bypass the cache entirely (the fault-aware
router wins the construction-time dispatch).
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import NocstarConfig
from repro.core.nocstar import NocstarInterconnect
from repro.faults.inject import FaultInjector
from repro.faults.models import FaultPlan
from repro.faults.routing import FaultAwareRouter
from repro.noc.mesh import ContentionFreeMesh
from repro.noc.route_cache import RouteCache, shared_route_cache
from repro.noc.smart import SmartNetwork
from repro.noc.topology import MeshTopology

tile_counts = st.integers(min_value=2, max_value=64)


def _pair(data, n):
    src = data.draw(st.integers(min_value=0, max_value=n - 1), label="src")
    dst = data.draw(st.integers(min_value=0, max_value=n - 1), label="dst")
    return src, dst


@settings(max_examples=40)
@given(tile_counts, st.data())
def test_cached_hops_and_paths_match_topology(n, data):
    topo = MeshTopology(n)
    cache = RouteCache(topo)
    src, dst = _pair(data, n)
    assert cache.hops[src][dst] == topo.hops(src, dst)
    path = cache.path(src, dst)
    assert list(path) == list(topo.xy_path(src, dst))
    assert len(path) == cache.hops[src][dst]
    # Memoised: the same tuple object comes back.
    assert cache.path(src, dst) is path


@settings(max_examples=30)
@given(tile_counts, st.integers(min_value=1, max_value=6), st.data())
def test_cached_mesh_send_equals_live_mesh_send(n, cycles_per_hop, data):
    topo = MeshTopology(n)
    cache = RouteCache(topo)
    live = ContentionFreeMesh(
        topo, router_cycles=cycles_per_hop - 1 or 1, wire_cycles=1
    )
    cached = ContentionFreeMesh(
        topo,
        router_cycles=live.router_cycles,
        wire_cycles=live.wire_cycles,
        routes=cache,
    )
    assert cached.send.__func__ is ContentionFreeMesh._send_cached
    src, dst = _pair(data, n)
    now = data.draw(st.integers(min_value=0, max_value=10_000), label="now")
    assert cached.send(src, dst, now) == live.send(src, dst, now)
    table = cache.mesh_latency(live.cycles_per_hop)
    assert table[src][dst] == cache.hops[src][dst] * live.cycles_per_hop


@settings(max_examples=30)
@given(tile_counts, st.data())
def test_cached_smart_send_equals_live_smart_send(n, data):
    topo = MeshTopology(n)
    src, dst = _pair(data, n)
    now = data.draw(st.integers(min_value=0, max_value=10_000), label="now")
    # Fresh networks per draw: one uncontended send each, so the only
    # difference can come from the route source.
    live = SmartNetwork(topo).send(src, dst, now)
    cached = SmartNetwork(topo, routes=RouteCache(topo)).send(src, dst, now)
    assert cached == live


@settings(max_examples=30)
@given(tile_counts, st.integers(min_value=1, max_value=8), st.data())
def test_cached_nocstar_send_equals_live_nocstar_send(n, hpc_max, data):
    topo = MeshTopology(n)
    config = NocstarConfig(hpc_max=hpc_max)
    cache = RouteCache(topo)
    src, dst = _pair(data, n)
    now = data.draw(st.integers(min_value=0, max_value=10_000), label="now")
    live = NocstarInterconnect(topo, config=config)
    routed = NocstarInterconnect(topo, config=config, routes=cache)
    assert routed.send.__func__ is NocstarInterconnect._send_routed
    assert routed.send(src, dst, now) == live.send(src, dst, now)
    # The derived cycle table is exactly the live ceil-division.
    table = cache.nocstar_cycles(hpc_max)
    assert table[src][dst] == live.traversal_cycles(cache.hops[src][dst])


@settings(max_examples=25)
@given(st.integers(min_value=4, max_value=36), st.data())
def test_dead_links_bypass_the_cache(n, data):
    """A LinkFailure beats the cache: dispatch goes to the fault-aware
    router, and arrivals follow its (possibly longer) detour path."""
    topo = MeshTopology(n)
    cache = RouteCache(topo)
    link = data.draw(
        st.sampled_from(sorted(topo.all_links())), label="dead_link"
    )
    plan = FaultPlan(num_tiles=n, failed_links=(link,))
    faults = FaultInjector(plan, topo)
    router = FaultAwareRouter(topo, [link])

    mesh = ContentionFreeMesh(topo, faults=faults, routes=cache)
    assert mesh.send.__func__ is ContentionFreeMesh._send_fault_routed
    smart = SmartNetwork(topo, faults=faults, routes=cache)
    assert smart._route.__func__ is SmartNetwork._fault_route
    nocstar = NocstarInterconnect(topo, faults=faults, routes=cache)
    assert nocstar.send.__func__ is NocstarInterconnect._send_faulty

    src, dst = _pair(data, n)
    route = router.route(src, dst)
    if route is None:
        return  # partitioned pair; degradation paths are tested elsewhere
    traversal = mesh.send(src, dst, 0)
    assert traversal.hops == len(route)
    assert traversal.arrival == len(route) * mesh.cycles_per_hop
    assert link not in traversal.links
    # The detour is never shorter than the Manhattan distance (it can
    # be equal when another minimal path avoids the dead link).
    assert len(route) >= cache.hops[src][dst]


def test_shared_route_cache_is_per_size_singleton():
    a = shared_route_cache(16)
    b = shared_route_cache(16)
    c = shared_route_cache(32)
    assert a is b
    assert a is not c
    assert a.num_tiles == 16 and c.num_tiles == 32
