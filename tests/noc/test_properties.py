"""Property tests across the NoC models."""

from hypothesis import given, settings, strategies as st

from repro.noc.bus import BusNetwork
from repro.noc.fbfly import FlattenedButterfly
from repro.noc.mesh import ContendedMesh, ContentionFreeMesh
from repro.noc.smart import SmartNetwork
from repro.noc.topology import MeshTopology


@settings(max_examples=30)
@given(
    st.integers(min_value=2, max_value=64),
    st.data(),
)
def test_fbfly_route_is_valid(n, data):
    topo = MeshTopology(n)
    fb = FlattenedButterfly(topo)
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    route = fb.route(src, dst)
    assert len(route) <= 2
    if route:
        assert route[0][0] == src
        assert route[-1][1] == dst
        # Each express link stays within one row or one column.
        for a, b in route:
            ax, ay = topo.coords(a)
            bx, by = topo.coords(b)
            assert ax == bx or ay == by
    else:
        assert src == dst


@settings(max_examples=20)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=500),
        ),
        max_size=40,
    )
)
def test_bus_never_overlaps_transfers(messages):
    """At most one transfer occupies the bus in any cycle."""
    bus = BusNetwork(MeshTopology(16))
    windows = []
    for src, dst, now in messages:
        t = bus.send(src, dst, now)
        if t.hops:
            windows.append((t.arrival - bus.transfer_cycles, t.arrival))
    windows.sort()
    for (a_start, a_end), (b_start, b_end) in zip(windows, windows[1:]):
        assert a_end <= b_start


@settings(max_examples=20)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=500),
        ),
        max_size=40,
    )
)
def test_every_network_arrival_at_or_after_send(messages):
    topo = MeshTopology(16)
    networks = [
        ContentionFreeMesh(topo),
        ContendedMesh(topo),
        SmartNetwork(topo),
        BusNetwork(topo),
        FlattenedButterfly(topo),
        FlattenedButterfly(topo, narrow=True),
    ]
    for src, dst, now in messages:
        for network in networks:
            t = network.send(src, dst, now)
            assert t.arrival >= now
            if src == dst:
                assert t.arrival == now


@settings(max_examples=15)
@given(st.integers(min_value=2, max_value=64), st.data())
def test_contention_free_mesh_latency_formula(n, data):
    topo = MeshTopology(n)
    mesh = ContentionFreeMesh(topo)
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    t = mesh.send(src, dst, now=100)
    assert t.arrival == 100 + 2 * topo.hops(src, dst)
