"""Table I regeneration: design-choice comparison."""

from repro.noc.tradeoffs import evaluate_designs


def by_name():
    return {row.name: row for row in evaluate_designs(64)}


def test_all_designs_present():
    names = {row.name for row in evaluate_designs(64)}
    assert names == {
        "bus", "mesh", "fbfly-wide", "fbfly-narrow", "smart", "nocstar"
    }


def test_nocstar_good_everywhere():
    """Table I's bottom row: NOCSTAR is the only all-check design."""
    nocstar = by_name()["nocstar"]
    assert all(glyph.startswith("yes") for glyph in nocstar.glyphs.values())


def test_bus_fails_bandwidth_and_power():
    bus = by_name()["bus"]
    assert bus.glyphs["latency"].startswith("yes")
    assert bus.glyphs["bandwidth"].startswith("no")
    assert bus.glyphs["power"].startswith("no")


def test_mesh_fails_latency():
    mesh = by_name()["mesh"]
    assert mesh.glyphs["latency"].startswith("no")
    assert mesh.glyphs["bandwidth"].startswith("yes")


def test_fbfly_wide_extreme_area_power():
    wide = by_name()["fbfly-wide"]
    assert wide.glyphs["latency"].startswith("yes")
    assert wide.glyphs["area"] == "no+"
    assert wide.glyphs["power"] == "no+"
    assert wide.glyphs["bandwidth"] == "yes+"


def test_smart_good_latency_bad_area():
    smart = by_name()["smart"]
    assert smart.glyphs["latency"].startswith("yes")
    assert smart.glyphs["area"].startswith("no")


def test_quantities_sane():
    for row in evaluate_designs(64):
        assert row.latency_cycles > 0
        assert row.bandwidth_transfers > 0
        assert row.area_units > 0
