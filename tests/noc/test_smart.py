"""SMART NoC bypass model."""

import pytest

from repro.noc.smart import SmartNetwork
from repro.noc.topology import MeshTopology


def test_rejects_bad_hpc():
    with pytest.raises(ValueError):
        SmartNetwork(MeshTopology(16), hpc_max=0)


def test_uncontended_within_hpc_is_two_cycles():
    smart = SmartNetwork(MeshTopology(64), hpc_max=8)
    t = smart.send(0, 7, now=10)  # 7 hops, one segment
    assert t.arrival == 12  # 1 setup + 1 data cycle


def test_long_path_needs_multiple_segments():
    smart = SmartNetwork(MeshTopology(64), hpc_max=8)
    t = smart.send(0, 63, now=0)  # 14 hops = 2 segments
    # setup + segment + premature-stop relatch + segment
    assert t.arrival >= 3
    assert t.hops == 14


def test_local_message_is_free():
    smart = SmartNetwork(MeshTopology(16))
    assert smart.send(4, 4, 0).arrival == 0


def test_conflict_causes_stop_or_queue():
    smart = SmartNetwork(MeshTopology(16), hpc_max=8)
    a = smart.send(0, 3, now=0)
    b = smart.send(0, 3, now=0)
    assert b.arrival > a.arrival


def test_partial_conflict_premature_stop():
    smart = SmartNetwork(MeshTopology(16), hpc_max=8)
    smart.send(1, 2, now=0)  # occupies link (1,2) at cycle 1
    before = smart.premature_stops
    t = smart.send(0, 3, now=0)  # wants links (0,1),(1,2),(2,3) at cycle 1
    assert smart.premature_stops > before
    assert t.arrival > 2


def test_disjoint_traffic_unaffected():
    smart = SmartNetwork(MeshTopology(16), hpc_max=8)
    smart.send(0, 3, now=0)
    t = smart.send(12, 15, now=0)
    assert t.queue_cycles == 0
    assert smart.total_hops == 6


def test_faster_than_mesh_for_long_paths():
    from repro.noc.mesh import ContentionFreeMesh

    topo = MeshTopology(64)
    smart = SmartNetwork(topo, hpc_max=8)
    mesh = ContentionFreeMesh(topo)
    assert smart.send(0, 63, 0).arrival < mesh.send(0, 63, 0).arrival
