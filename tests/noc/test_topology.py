"""Mesh topology: coordinates, XY routes, link enumeration."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.topology import MeshTopology


def test_square_factoring():
    assert (MeshTopology(16).rows, MeshTopology(16).cols) == (4, 4)
    assert (MeshTopology(32).rows, MeshTopology(32).cols) == (4, 8)
    assert (MeshTopology(64).rows, MeshTopology(64).cols) == (8, 8)


def test_rejects_empty():
    with pytest.raises(ValueError):
        MeshTopology(0)


def test_coords_round_trip():
    topo = MeshTopology(32)
    for tile in range(32):
        x, y = topo.coords(tile)
        assert topo.tile_at(x, y) == tile


def test_coords_bounds_checked():
    topo = MeshTopology(16)
    with pytest.raises(ValueError):
        topo.coords(16)
    with pytest.raises(ValueError):
        topo.tile_at(4, 0)


def test_hops_is_manhattan():
    topo = MeshTopology(16)  # 4x4
    assert topo.hops(0, 0) == 0
    assert topo.hops(0, 3) == 3
    assert topo.hops(0, 15) == 6  # corner to corner


def test_xy_path_length_matches_hops():
    topo = MeshTopology(16)
    for src in range(16):
        for dst in range(16):
            assert len(topo.xy_path(src, dst)) == topo.hops(src, dst)


def test_xy_path_goes_x_first():
    topo = MeshTopology(16)
    path = topo.xy_path(0, 5)  # (0,0) -> (1,1)
    first_src, first_dst = path[0]
    assert topo.coords(first_dst)[1] == topo.coords(first_src)[1]  # same row


def test_xy_path_links_are_adjacent():
    topo = MeshTopology(64)
    for src, dst in [(0, 63), (7, 56), (10, 42)]:
        path = topo.xy_path(src, dst)
        assert path[0][0] == src
        assert path[-1][1] == dst
        for (a, b), (c, d) in zip(path, path[1:]):
            assert b == c
            assert topo.hops(a, b) == 1


def test_edge_tile_on_bottom_row():
    topo = MeshTopology(64)
    _, y = topo.coords(topo.edge_tile)
    assert y == topo.rows - 1


def test_diameter():
    assert MeshTopology(64).diameter == 14
    assert MeshTopology(16).diameter == 6


def test_all_links_count():
    """A RxC mesh has 2*(R*(C-1) + C*(R-1)) directed links."""
    topo = MeshTopology(16)
    assert len(topo.all_links()) == 2 * (4 * 3 + 4 * 3)


def test_mean_hops_positive():
    topo = MeshTopology(64)
    assert 0 < topo.mean_hops_to(topo.center_tile) < topo.diameter


@given(st.integers(min_value=1, max_value=128))
def test_factoring_covers_all_tiles(n):
    topo = MeshTopology(n)
    assert topo.rows * topo.cols == n
    assert topo.rows <= topo.cols


@given(
    st.integers(min_value=2, max_value=64),
    st.data(),
)
def test_hops_symmetric(n, data):
    topo = MeshTopology(n)
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert topo.hops(src, dst) == topo.hops(dst, src)
    assert topo.hops(src, dst) <= topo.diameter
