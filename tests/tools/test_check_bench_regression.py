"""The benchmark trend gate: green on flat metrics, red past +15%."""

import json
import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..",
                 "tools"),
)

from check_bench_regression import (  # noqa: E402
    DEFAULT_THRESHOLD,
    check_file,
    extract_metric,
    main,
)


def _write(directory, basename, payload):
    path = directory / basename
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.fixture()
def corpus(tmp_path):
    """Matched baseline/fresh artefact directories for all four guards."""
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    baseline.mkdir()
    fresh.mkdir()
    payloads = {
        "BENCH_engine.json": {"batched_seconds": 1.0, "min_speedup": 1.8},
        "BENCH_sweep.json": {"after_seconds": 2.0},
        "BENCH_serve.json": {"p95_seconds": 0.5},
        "BENCH_faults.json": {
            "points": [{"rate": 0.0, "cycles": 50000},
                       {"rate": 0.1, "cycles": 60000}]
        },
    }
    for basename, payload in payloads.items():
        _write(baseline, basename, payload)
        _write(fresh, basename, payload)
    return baseline, fresh


def _run(fresh, baseline, extra=()):
    files = sorted(str(p) for p in fresh.iterdir())
    return main([*files, "--baseline-dir", str(baseline), *extra])


# ----------------------------------------------------------------------
# metric extraction

def test_extract_metric_per_file():
    assert extract_metric("BENCH_engine.json", {"batched_seconds": 1.5}) \
        == ("batched_seconds", 1.5)
    assert extract_metric(
        "BENCH_faults.json",
        {"points": [{"rate": 0.1, "cycles": 9}, {"rate": 0.0, "cycles": 7}]},
    ) == ("cycles@rate=0", 7.0)
    with pytest.raises(KeyError):
        extract_metric("BENCH_engine.json", {"speedup": 2.0})
    with pytest.raises(KeyError, match="no rate-0"):
        extract_metric("BENCH_faults.json", {"points": [{"rate": 0.5}]})
    with pytest.raises(KeyError, match="no metric rule"):
        extract_metric("BENCH_unknown.json", {})


# ----------------------------------------------------------------------
# the gate

def test_gate_green_on_identical_metrics(corpus, capsys):
    baseline, fresh = corpus
    assert _run(fresh, baseline) == 0
    assert "OK: all metrics within +15%" in capsys.readouterr().out


def test_gate_green_within_threshold(corpus):
    baseline, fresh = corpus
    _write(fresh, "BENCH_serve.json", {"p95_seconds": 0.55})  # +10%
    assert _run(fresh, baseline) == 0


def test_gate_red_on_regression(corpus, capsys):
    baseline, fresh = corpus
    _write(fresh, "BENCH_serve.json", {"p95_seconds": 1.0})  # 2x slower
    assert _run(fresh, baseline) == 1
    captured = capsys.readouterr()
    assert "+100.0%" in captured.out and "REGRESSION" in captured.out
    assert "FAIL" in captured.err


def test_gate_red_on_fault_cycle_growth(corpus):
    baseline, fresh = corpus
    _write(fresh, "BENCH_faults.json",
           {"points": [{"rate": 0.0, "cycles": 60000}]})  # +20%
    assert _run(fresh, baseline) == 1


def test_gate_threshold_flag(corpus):
    baseline, fresh = corpus
    _write(fresh, "BENCH_serve.json", {"p95_seconds": 0.55})  # +10%
    assert _run(fresh, baseline, extra=("--threshold", "0.05")) == 1
    assert _run(fresh, baseline, extra=("--threshold", "0.25")) == 0


def test_missing_baseline_passes_with_warning(corpus, capsys):
    baseline, fresh = corpus
    os.unlink(str(baseline / "BENCH_serve.json"))
    assert _run(fresh, baseline) == 0
    captured = capsys.readouterr()
    assert "no-baseline" in captured.out
    assert "a trend needs two points" in captured.err


def test_malformed_fresh_fails_loudly(corpus, capsys):
    baseline, fresh = corpus
    _write(fresh, "BENCH_engine.json", {"wrong_key": 1})
    assert _run(fresh, baseline) == 1
    assert "malformed" in capsys.readouterr().out


def test_missing_fresh_passes_with_warning(corpus, capsys):
    baseline, fresh = corpus
    files = [str(fresh / "BENCH_engine.json"),
             str(fresh / "BENCH_never_ran.json")]
    assert main([*files, "--baseline-dir", str(baseline)]) == 0
    assert "missing-fresh" in capsys.readouterr().out


def test_check_file_row_shape(corpus):
    baseline, fresh = corpus
    row = check_file(
        str(fresh / "BENCH_sweep.json"), str(baseline), DEFAULT_THRESHOLD
    )
    assert row["status"] == "ok"
    assert row["metric"] == "after_seconds"
    assert row["ratio"] == pytest.approx(1.0)


def test_committed_artefacts_are_green():
    """The gate over the repo's real trajectory (git-show baseline)."""
    repo_root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "..", "..")
    cwd = os.getcwd()
    os.chdir(repo_root)
    try:
        assert main([]) == 0
    finally:
        os.chdir(cwd)
