"""Superpage layout, promotion, and demotion."""

import pytest

from repro.vm.address import PAGE_2M, PAGE_4K, PAGES_PER_2M
from repro.vm.address_space import AddressSpace, Extent, VpnAllocator
from repro.vm.superpage import SuperpagePolicy


def test_policy_rejects_bad_fraction():
    with pytest.raises(ValueError):
        SuperpagePolicy(1.5)
    with pytest.raises(ValueError):
        SuperpagePolicy(-0.1)


def test_layout_splits_by_fraction():
    policy = SuperpagePolicy(0.5)
    extents = policy.layout(VpnAllocator(), 4096)
    by_size = {e.page_size: e for e in extents}
    assert by_size[PAGE_2M].num_pages == 2048
    assert by_size[PAGE_4K].num_pages == 2048


def test_layout_rounds_down_to_whole_superpages():
    policy = SuperpagePolicy(0.5)
    extents = policy.layout(VpnAllocator(), 1500)
    by_size = {e.page_size: e for e in extents}
    # 750 rounds down to 512 (one whole 2MB region).
    assert by_size[PAGE_2M].num_pages == 512
    assert by_size[PAGE_4K].num_pages == 1500 - 512


def test_layout_zero_fraction_is_all_4k():
    extents = SuperpagePolicy(0.0).layout(VpnAllocator(), 1000)
    assert len(extents) == 1
    assert extents[0].page_size == PAGE_4K


def test_layout_small_footprint_cannot_use_superpages():
    extents = SuperpagePolicy(0.9).layout(VpnAllocator(), 100)
    assert [e.page_size for e in extents] == [PAGE_4K]


def test_layout_preserves_total_pages():
    for fraction in (0.0, 0.3, 0.65, 1.0):
        extents = SuperpagePolicy(fraction).layout(VpnAllocator(), 10_000)
        assert sum(e.num_pages for e in extents) == 10_000


def test_layout_superpage_extent_is_aligned():
    extents = SuperpagePolicy(0.8).layout(VpnAllocator(), 4096)
    super_extent = next(e for e in extents if e.page_size == PAGE_2M)
    assert super_extent.base_vpn % PAGES_PER_2M == 0


def test_promote_invalidates_512_4k_entries():
    space = AddressSpace(1, [Extent(0, 1024)])
    batch = SuperpagePolicy.promote(space, 0)
    assert len(batch) == 512
    assert all(size == PAGE_4K for size, _ in batch.entries)
    assert space.classify(100) == (PAGE_2M, 1)
    assert space.classify(600) == (PAGE_4K, 1)


def test_promote_middle_region_keeps_neighbours():
    space = AddressSpace(1, [Extent(0, 2048)])
    SuperpagePolicy.promote(space, 512)
    assert space.classify(0)[0] == PAGE_4K
    assert space.classify(700)[0] == PAGE_2M
    assert space.classify(1500)[0] == PAGE_4K


def test_demote_invalidates_the_superpage_entry():
    space = AddressSpace(1, [Extent(0, 1024, PAGE_2M)])
    batch = SuperpagePolicy.demote(space, 512)
    assert batch.entries == ((PAGE_2M, 1),)
    assert space.classify(600)[0] == PAGE_4K
    assert space.classify(100)[0] == PAGE_2M


def test_promote_then_demote_round_trips():
    space = AddressSpace(1, [Extent(0, 1024)])
    SuperpagePolicy.promote(space, 0)
    SuperpagePolicy.demote(space, 0)
    assert space.classify(0) == (PAGE_4K, 1)
    assert space.footprint_pages == 1024


def test_promote_rejects_unaligned_base():
    space = AddressSpace(1, [Extent(0, 1024)])
    with pytest.raises(ValueError):
        SuperpagePolicy.promote(space, 100)


def test_promote_rejects_wrong_backing():
    space = AddressSpace(1, [Extent(0, 1024, PAGE_2M)])
    with pytest.raises(ValueError):
        SuperpagePolicy.promote(space, 0)  # already a superpage


def test_promote_preserves_shared_flag():
    space = AddressSpace(1, [Extent(0, 1024, shared=True)])
    SuperpagePolicy.promote(space, 0)
    _, tag = space.classify(100)
    assert tag == 0  # still globally shared
