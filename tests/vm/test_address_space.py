"""Address-space extent bookkeeping and classification."""

import pytest
from hypothesis import given, strategies as st

from repro.vm.address import PAGE_2M, PAGE_4K, PAGES_PER_2M
from repro.vm.address_space import (
    AddressSpace,
    Extent,
    GLOBAL_ASID,
    VpnAllocator,
)


def test_extent_rejects_empty():
    with pytest.raises(ValueError):
        Extent(0, 0)


def test_extent_rejects_misaligned_superpage():
    with pytest.raises(ValueError):
        Extent(1, PAGES_PER_2M, page_size=PAGE_2M)
    with pytest.raises(ValueError):
        Extent(0, PAGES_PER_2M + 1, page_size=PAGE_2M)


def test_extent_contains():
    extent = Extent(100, 10)
    assert extent.contains(100)
    assert extent.contains(109)
    assert not extent.contains(110)
    assert not extent.contains(99)


def test_address_space_rejects_global_asid():
    with pytest.raises(ValueError):
        AddressSpace(GLOBAL_ASID)


def test_add_extent_rejects_overlap():
    space = AddressSpace(1, [Extent(100, 10)])
    with pytest.raises(ValueError):
        space.add_extent(Extent(105, 10))
    with pytest.raises(ValueError):
        space.add_extent(Extent(95, 10))
    space.add_extent(Extent(110, 5))  # adjacent is fine


def test_classify_private_extent_uses_own_asid():
    space = AddressSpace(7, [Extent(0, 16)])
    assert space.classify(3) == (PAGE_4K, 7)


def test_classify_shared_extent_uses_global_asid():
    space = AddressSpace(7, [Extent(0, 16, shared=True)])
    assert space.classify(3) == (PAGE_4K, GLOBAL_ASID)


def test_classify_unmapped_raises():
    space = AddressSpace(1, [Extent(100, 10)])
    with pytest.raises(KeyError):
        space.classify(50)


def test_find_extent_between_extents():
    space = AddressSpace(1, [Extent(0, 10), Extent(100, 10)])
    assert space.find_extent(50) is None
    assert space.find_extent(5).base_vpn == 0
    assert space.find_extent(105).base_vpn == 100


def test_translation_key_collapses_superpage():
    space = AddressSpace(2, [Extent(512, 512, page_size=PAGE_2M)])
    keys = {space.translation_key(512 + i) for i in (0, 100, 511)}
    assert keys == {(2, PAGE_2M, 1)}


def test_footprint_pages():
    space = AddressSpace(1, [Extent(0, 10), Extent(100, 32)])
    assert space.footprint_pages == 42


def test_replace_extent_swaps_mapping():
    old = Extent(0, 1024)
    space = AddressSpace(1, [old])
    space.replace_extent(old, [Extent(0, 512), Extent(512, 512, PAGE_2M)])
    assert space.classify(100) == (PAGE_4K, 1)
    assert space.classify(600) == (PAGE_2M, 1)


def test_allocator_never_overlaps():
    allocator = VpnAllocator()
    a = allocator.allocate(100)
    b = allocator.allocate(50)
    assert b >= a + 100


def test_allocator_alignment():
    allocator = VpnAllocator()
    allocator.allocate(3)
    aligned = allocator.allocate(512, align_pages=512)
    assert aligned % 512 == 0


def test_allocator_rejects_zero():
    with pytest.raises(ValueError):
        VpnAllocator().allocate(0)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=2000),
            st.sampled_from([1, 8, 512]),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_allocator_allocations_are_disjoint(requests):
    allocator = VpnAllocator()
    ranges = []
    for pages, align in requests:
        base = allocator.allocate(pages, align_pages=align)
        assert base % align == 0
        ranges.append((base, base + pages))
    ranges.sort()
    for (_, end), (start, _) in zip(ranges, ranges[1:]):
        assert end <= start


@given(st.integers(min_value=0, max_value=2047))
def test_classify_is_consistent_with_find_extent(vpn):
    space = AddressSpace(
        3,
        [
            Extent(0, 512, PAGE_2M),
            Extent(512, 512, shared=True),
            Extent(1024, 1024),
        ],
    )
    extent = space.find_extent(vpn)
    size, tag = space.classify(vpn)
    assert extent.page_size == size
    assert tag == (GLOBAL_ASID if extent.shared else 3)
