"""Page-walk latency model and walker queueing."""

import pytest

from repro.mem.cache import CacheHierarchy
from repro.vm.address import PAGE_2M, PAGE_4K
from repro.vm.page_table import PageTable
from repro.vm.walker import FixedLatencyWalker, PageTableWalker, WalkerQueue


def make_walker(cores=2):
    table = PageTable()
    return PageTableWalker(table, CacheHierarchy(cores), cores)


def test_first_walk_misses_everywhere():
    walker = make_walker()
    result = walker.walk(0, 1, 1000, PAGE_4K, now=0)
    assert result.levels.count("dram") >= 1
    assert result.latency >= 250  # at least one DRAM trip


def test_repeat_walk_is_much_cheaper():
    walker = make_walker()
    cold = walker.walk(0, 1, 1000, PAGE_4K, now=0)
    warm = walker.walk(0, 1, 1000, PAGE_4K, now=10)
    assert warm.latency < cold.latency
    assert warm.latency <= 20  # PWC + L1 hits


def test_neighbour_walk_reuses_upper_levels():
    walker = make_walker()
    walker.walk(0, 1, 1000, PAGE_4K, now=0)
    neighbour = walker.walk(0, 1, 1001, PAGE_4K, now=10)
    # Upper levels hit the PWC; only the leaf can go far.
    assert neighbour.levels[:3] == ("pwc", "pwc", "pwc")


def test_2m_walk_touches_three_levels():
    walker = make_walker()
    result = walker.walk(0, 1, 512 * 5, PAGE_2M, now=0)
    assert len(result.levels) == 3


def test_walks_counted():
    walker = make_walker()
    walker.walk(0, 1, 1, PAGE_4K, 0)
    walker.walk(0, 1, 2, PAGE_4K, 0)
    assert walker.walks == 2


def test_pwc_is_per_core():
    walker = make_walker(cores=2)
    walker.walk(0, 1, 1000, PAGE_4K, now=0)
    other_core = walker.walk(1, 1, 1001, PAGE_4K, now=10)
    assert other_core.levels[0] != "pwc"  # core 1's PWC is cold


def test_pollution_counts_non_l1_fills():
    walker = make_walker()
    cold = walker.walk(0, 1, 1000, PAGE_4K, now=0)
    assert cold.pollution >= 1
    warm = walker.walk(0, 1, 1000, PAGE_4K, now=5)
    assert warm.pollution == 0


def test_steady_state_walk_latency_band():
    """After warmup, distinct-page walks should cost ~30-150 cycles
    (LLC-class references dominating), not always-DRAM."""
    walker = make_walker()
    for vpn in range(0, 2048, 8):
        walker.walk(0, 1, vpn, PAGE_4K, now=vpn * 10)
    lat = [
        walker.walk(0, 1, vpn, PAGE_4K, now=21000 + vpn).latency
        for vpn in range(0, 2048, 64)
    ]
    mean = sum(lat) / len(lat)
    assert 10 <= mean <= 300  # bounded by one leaf DRAM trip + overhead


def test_fixed_walker_constant():
    walker = FixedLatencyWalker(PageTable(), 40)
    for vpn in (1, 100, 999):
        assert walker.walk(0, 1, vpn, PAGE_4K, 0).latency == 40
    assert walker.walks == 3


def test_fixed_walker_rejects_nonpositive():
    with pytest.raises(ValueError):
        FixedLatencyWalker(PageTable(), 0)


def test_queue_idle_walk_starts_immediately():
    queue = WalkerQueue()
    assert queue.admit(100, 30) == 130
    assert queue.queued_walks == 0


def test_queue_two_walkers_run_concurrently():
    queue = WalkerQueue(num_walkers=2)
    assert queue.admit(0, 50) == 50
    assert queue.admit(0, 50) == 50  # second walker
    assert queue.queued_walks == 0


def test_queue_third_walk_waits():
    queue = WalkerQueue(num_walkers=2)
    queue.admit(0, 50)
    queue.admit(0, 50)
    done = queue.admit(0, 50)
    assert done == 100
    assert queue.queued_walks == 1
    assert queue.total_queue_cycles == 50


def test_queue_rejects_zero_walkers():
    with pytest.raises(ValueError):
        WalkerQueue(num_walkers=0)


def test_queue_busy_until_tracks_latest():
    queue = WalkerQueue(num_walkers=2)
    queue.admit(0, 10)
    queue.admit(0, 80)
    assert queue.busy_until == 80
