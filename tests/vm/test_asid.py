"""ASID allocation and recycling."""

import pytest
from hypothesis import given, strategies as st

from repro.vm.asid import AsidManager


def test_rejects_zero_capacity():
    with pytest.raises(ValueError):
        AsidManager(0)


def test_fresh_allocation_no_shootdown():
    manager = AsidManager(4)
    assignment = manager.activate(100)
    assert assignment.asid != 0
    assert not assignment.required_shootdown


def test_reactivation_keeps_asid():
    manager = AsidManager(4)
    first = manager.activate(100)
    second = manager.activate(100)
    assert first.asid == second.asid
    assert manager.recycles == 0


def test_distinct_processes_distinct_asids():
    manager = AsidManager(4)
    asids = {manager.activate(pid).asid for pid in range(4)}
    assert len(asids) == 4


def test_recycle_evicts_lru():
    manager = AsidManager(2)
    a = manager.activate(1)
    manager.activate(2)
    manager.activate(1)  # touch 1 so 2 becomes LRU
    assignment = manager.activate(3)
    assert assignment.required_shootdown
    assert assignment.recycled_from == 2
    assert manager.recycles == 1
    assert manager.asid_of(2) is None
    assert manager.asid_of(1) == a.asid


def test_release_returns_to_pool():
    manager = AsidManager(1)
    first = manager.activate(1)
    manager.release(1)
    second = manager.activate(2)
    assert second.asid == first.asid
    assert not second.required_shootdown  # clean release, no recycle


def test_release_unknown_is_noop():
    manager = AsidManager(2)
    manager.release(42)
    assert manager.active_count == 0


@given(st.lists(st.integers(min_value=1, max_value=12), max_size=100))
def test_invariants_under_random_schedules(pids):
    manager = AsidManager(4)
    for pid in pids:
        assignment = manager.activate(pid)
        assert 1 <= assignment.asid <= 4
        manager.validate()
        assert manager.active_count <= 4
