"""Address arithmetic invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.vm import address as addr


def test_page_constants_are_consistent():
    assert addr.PAGE_4K == 1 << addr.PAGE_SHIFT_4K
    assert addr.PAGE_2M == 1 << addr.PAGE_SHIFT_2M
    assert addr.PAGE_1G == 1 << addr.PAGE_SHIFT_1G


def test_pages_per_superpage():
    assert addr.PAGES_PER_2M == 512
    assert addr.PAGES_PER_1G == 512 * 512


@pytest.mark.parametrize(
    "size,shift",
    [(addr.PAGE_4K, 12), (addr.PAGE_2M, 21), (addr.PAGE_1G, 30)],
)
def test_page_shift(size, shift):
    assert addr.page_shift(size) == shift


def test_page_shift_rejects_unknown_size():
    with pytest.raises(ValueError):
        addr.page_shift(8192)


def test_vpn_va_round_trip():
    vpn = 0x123456
    assert addr.va_to_vpn(addr.vpn_to_va(vpn)) == vpn


def test_va_to_vpn_truncates_offset():
    assert addr.va_to_vpn(addr.vpn_to_va(7) + 4095) == 7


def test_translation_vpn_4k_is_identity():
    assert addr.translation_vpn(12345, addr.PAGE_4K) == 12345


def test_translation_vpn_2m_collapses_512_pages():
    base = 512 * 9
    numbers = {addr.translation_vpn(base + i, addr.PAGE_2M) for i in range(512)}
    assert numbers == {9}


def test_translation_vpn_1g():
    assert addr.translation_vpn(512 * 512 * 3 + 99, addr.PAGE_1G) == 3


def test_pages_spanned():
    assert addr.pages_spanned(addr.PAGE_4K) == 1
    assert addr.pages_spanned(addr.PAGE_2M) == 512


def test_is_aligned():
    assert addr.is_aligned(1024, addr.PAGE_2M)
    assert not addr.is_aligned(1025, addr.PAGE_2M)
    assert addr.is_aligned(12345, addr.PAGE_4K)


@given(st.integers(min_value=0, max_value=addr.MAX_VPN))
def test_translation_vpn_monotone_in_vpn(vpn):
    """Collapsing to superpage numbers preserves ordering."""
    t = addr.translation_vpn
    assert t(vpn, addr.PAGE_2M) <= t(vpn + 1, addr.PAGE_2M)
    assert t(vpn, addr.PAGE_2M) == vpn >> 9


@given(st.integers(min_value=0, max_value=addr.MAX_VPN))
def test_superpage_contains_its_4k_pages(vpn):
    """A 4KB VPN maps into the 2MB page that covers its address."""
    two_meg = addr.translation_vpn(vpn, addr.PAGE_2M)
    assert two_meg * 512 <= vpn < (two_meg + 1) * 512
