"""x86-64 radix page-table behaviour."""

import pytest

from repro.vm.address import PAGE_1G, PAGE_2M, PAGE_4K
from repro.vm.page_table import ENTRY_BYTES, FRAME_BYTES, PageTable


def test_walk_depth_by_page_size():
    table = PageTable()
    assert len(table.walk_addresses(1, 0, PAGE_4K)) == 4
    assert len(table.walk_addresses(1, 0, PAGE_2M)) == 3
    assert len(table.walk_addresses(1, 0, PAGE_1G)) == 2


def test_walk_addresses_are_stable():
    table = PageTable()
    first = table.walk_addresses(1, 12345, PAGE_4K)
    second = table.walk_addresses(1, 12345, PAGE_4K)
    assert first == second


def test_same_pml4_different_leaf():
    """VPNs in the same 2MB region share all upper levels."""
    table = PageTable()
    a = table.walk_addresses(1, 512 * 7 + 1, PAGE_4K)
    b = table.walk_addresses(1, 512 * 7 + 2, PAGE_4K)
    assert a[:3] == b[:3]
    assert a[3] != b[3]
    assert abs(a[3] - b[3]) == ENTRY_BYTES


def test_different_asids_use_different_tables():
    table = PageTable()
    a = table.walk_addresses(1, 100, PAGE_4K)
    b = table.walk_addresses(2, 100, PAGE_4K)
    assert a[0] != b[0]


def test_map_page_is_idempotent():
    table = PageTable()
    first = table.map_page(1, 100, PAGE_4K)
    second = table.map_page(1, 100, PAGE_4K)
    assert first == second
    assert table.pages_mapped == 1


def test_map_page_superpage_collapses():
    table = PageTable()
    a = table.map_page(1, 512 * 3, PAGE_2M)
    b = table.map_page(1, 512 * 3 + 99, PAGE_2M)
    assert a.ppn == b.ppn
    assert table.pages_mapped == 1


def test_distinct_pages_get_distinct_frames():
    table = PageTable()
    ppns = {table.map_page(1, vpn, PAGE_4K).ppn for vpn in range(64)}
    assert len(ppns) == 64


def test_walk_entry_addresses_are_entry_aligned():
    table = PageTable()
    for addr in table.walk_addresses(1, 98765, PAGE_4K):
        assert addr % ENTRY_BYTES == 0
        assert addr >= FRAME_BYTES  # frame 0 is reserved


def test_unmap_forgets_translation():
    table = PageTable()
    before = table.map_page(1, 100, PAGE_4K)
    table.unmap(1, 100, PAGE_4K)
    after = table.map_page(1, 100, PAGE_4K)
    assert after.ppn != before.ppn  # remapped to a fresh frame


def test_nodes_allocated_grows_sublinearly():
    """Adjacent pages share table nodes: 512 pages need ~4 nodes, not 2048."""
    table = PageTable()
    for vpn in range(512):
        table.map_page(1, vpn, PAGE_4K)
    assert table.nodes_allocated <= 8


def test_lookup_implicitly_maps():
    table = PageTable()
    pte = table.lookup(3, 777, PAGE_4K)
    assert pte.page_size == PAGE_4K
    assert table.pages_mapped == 1
