"""The ``repro.api`` facade contract and the legacy deprecation shim."""

import warnings

import pytest

import repro
from repro import api


def test_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_facade_versioned():
    assert api.VERSION == repro.__version__


def test_serve_surface_on_facade():
    request = api.SubmitRequest(workload="gups", configs=("nocstar",))
    assert request.job_id()
    assert api.SCHEMA_VERSION >= 1
    for name in ("ServeClient", "ServeConfig", "JobManager",
                 "BackgroundDaemon", "run_daemon", "TraceStore",
                 "execute_unit", "unit_cost"):
        assert name in api.__all__


@pytest.mark.parametrize("name", ["simulate", "compare", "run_suite"])
def test_legacy_sim_imports_warn(name):
    import repro.sim

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = getattr(repro.sim, name)
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.api" in str(w.message)
        for w in caught
    )
    # The shim forwards to the same object the facade exports.
    assert legacy is getattr(api, name)


def test_deep_module_imports_stay_clean():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.sim.engine import simulate  # noqa: F401
        from repro.sim.run import compare, run_suite  # noqa: F401
        from repro.sim import configs  # noqa: F401


def test_unknown_sim_attribute_raises():
    import repro.sim

    with pytest.raises(AttributeError):
        repro.sim.hyperdrive
