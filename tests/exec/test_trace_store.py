"""TraceStore: content addressing, build-once, attach identity, eviction."""

import os
import time

import pytest

from repro.exec.cache import workload_fingerprint
from repro.exec.trace_store import (
    TraceStore,
    _clear_attachments,
    attach_workload,
)
from repro.sim import configs as cfg
from repro.sim.scenario import Scenario
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _fresh_attachments():
    _clear_attachments()
    yield
    _clear_attachments()


def _scenario(**overrides):
    base = dict(
        configurations=(cfg.private(4), cfg.nocstar(4)),
        workloads="gups",
        accesses_per_core=200,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


def _signature(**overrides):
    return _scenario(**overrides).units()[0].build_signature()


def test_lineup_shares_one_signature():
    units = _scenario().units()
    assert len({unit.build_signature() for unit in units}) == 1


def test_key_is_stable_and_sensitive(tmp_path):
    store = TraceStore(str(tmp_path))
    key = store.key_for(_signature())
    assert key == store.key_for(_signature())
    assert len(key) == 64
    assert key != store.key_for(_signature(seed=4))
    assert key != store.key_for(_signature(accesses_per_core=201))
    assert key != store.key_for(_signature(workloads="olio"))
    assert key != store.key_for(_signature(smt=2))
    assert key != store.key_for(_signature(superpages=False))


def test_generator_version_bump_changes_every_key(tmp_path, monkeypatch):
    from repro.workloads import generators

    store = TraceStore(str(tmp_path))
    before = store.key_for(_signature())
    monkeypatch.setattr(generators, "GENERATOR_VERSION", 999)
    assert store.key_for(_signature()) != before


def test_ensure_builds_exactly_once(tmp_path):
    store = TraceStore(str(tmp_path))
    signature = _signature()
    path, built = store.ensure(signature)
    assert built and os.path.exists(path)
    mtime = os.path.getmtime(path)
    again, rebuilt = store.ensure(signature)
    assert again == path and not rebuilt
    assert os.path.getmtime(path) == mtime


def test_attached_workload_matches_in_process_build(tmp_path):
    store = TraceStore(str(tmp_path))
    unit = _scenario().units()[0]
    path, _ = store.ensure(unit.build_signature())
    attached = attach_workload(path)
    built = unit.build_workload()
    assert attached.traces == built.traces
    assert workload_fingerprint(attached) == workload_fingerprint(built)


def test_attach_returns_the_same_object_per_path(tmp_path):
    # Object identity is what keeps the engine's per-workload compiled
    # cache warm across a lineup's units within one worker process.
    store = TraceStore(str(tmp_path))
    path, _ = store.ensure(_signature())
    assert attach_workload(path) is attach_workload(path)


def test_missing_sidecar_reads_as_miss_and_rebuilds(tmp_path):
    store = TraceStore(str(tmp_path))
    signature = _signature()
    path, _ = store.ensure(signature)
    os.unlink(os.path.splitext(path)[0] + ".json")  # torn write
    assert store.key_for(signature) not in store
    again, rebuilt = store.ensure(signature)
    assert rebuilt and again == path
    assert attach_workload(path).traces  # readable after the rebuild


def test_stats_and_clear(tmp_path):
    store = TraceStore(str(tmp_path))
    assert store.stats() == {"artifacts": 0, "bytes": 0}
    store.ensure(_signature())
    store.ensure(_signature(seed=9))
    stats = store.stats()
    assert stats["artifacts"] == len(store) == 2
    assert stats["bytes"] > 0
    assert store.clear() == 2
    assert store.stats() == {"artifacts": 0, "bytes": 0}


def test_evict_drops_oldest_first(tmp_path):
    store = TraceStore(str(tmp_path))
    old_path, _ = store.ensure(_signature(seed=1))
    new_path, _ = store.ensure(_signature(seed=2))
    past = time.time() - 3600
    os.utime(old_path, (past, past))
    keep = store._entry_bytes(store.key_for(_signature(seed=2)))
    assert store.evict(max_bytes=keep) == 1
    assert not os.path.exists(old_path)
    assert os.path.exists(new_path)
    assert store.evict(max_bytes=keep) == 0  # already within budget


def test_prebuilt_artifacts_are_stored_once(tmp_path):
    from repro.workloads.generators import build_multithreaded

    store = TraceStore(str(tmp_path))
    workload = build_multithreaded(
        get_workload("gups"), 4, accesses_per_core=150, seed=7
    )
    fingerprint = workload_fingerprint(workload)
    path, built = store.ensure_prebuilt(fingerprint, workload)
    assert built
    again, rebuilt = store.ensure_prebuilt(fingerprint, workload)
    assert again == path and not rebuilt
    assert attach_workload(path).traces == workload.traces
