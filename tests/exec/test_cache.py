"""Content-addressed result cache: canonicalisation, keys, storage."""

import json
import pickle

import pytest

from repro.exec.cache import (
    ResultCache,
    canonical_json,
    canonicalize,
    unit_key,
    workload_fingerprint,
)
from repro.sim import configs as cfg
from repro.sim.engine import ENGINE_VERSION, StormConfig, simulate
from repro.sim.scenario import Scenario
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


def _unit(**overrides):
    base = dict(
        configurations=cfg.nocstar(4),
        workloads="olio",
        accesses_per_core=500,
        seed=7,
    )
    base.update(overrides)
    return Scenario(**base).units()[0]


def test_scenario_roundtrips_through_canonicaliser():
    unit = _unit()
    payload = canonical_json(unit)
    # stable JSON: parseable, and identical on re-serialisation
    assert json.loads(payload)["__dataclass__"] == "RunUnit"
    assert canonical_json(unit) == payload
    # an equal unit built from the spec object (not the registry name)
    # canonicalises identically
    twin = _unit(workloads=get_workload("olio"))
    assert canonical_json(twin) == payload
    # and a pickle round-trip changes nothing
    assert canonical_json(pickle.loads(pickle.dumps(unit))) == payload


def test_unit_key_is_content_addressed():
    assert unit_key(_unit(), ENGINE_VERSION) == unit_key(
        _unit(), ENGINE_VERSION
    )
    baseline = unit_key(_unit(), ENGINE_VERSION)
    assert unit_key(_unit(seed=8), ENGINE_VERSION) != baseline
    assert unit_key(_unit(accesses_per_core=501), ENGINE_VERSION) != baseline
    assert (
        unit_key(_unit(storm=StormConfig(period=100)), ENGINE_VERSION)
        != baseline
    )
    assert (
        unit_key(
            _unit(configurations=cfg.nocstar(4).renamed("x")), ENGINE_VERSION
        )
        != baseline
    )


def test_engine_version_participates_in_the_key():
    unit = _unit()
    assert unit_key(unit, "1") != unit_key(unit, "2")


def test_canonicalize_rejects_uncanonical_values():
    with pytest.raises(TypeError):
        canonicalize(lambda: None)
    with pytest.raises(TypeError):
        canonicalize(float("nan"))
    with pytest.raises(TypeError):
        canonicalize(object())


def test_cache_round_trips_run_results(tmp_path):
    unit = _unit(accesses_per_core=300)
    result = unit.execute()
    cache = ResultCache(tmp_path / "cache")
    key = unit_key(unit, ENGINE_VERSION)
    assert key not in cache
    cache.put(key, result)
    assert key in cache
    assert len(cache) == 1
    restored = cache.get(key)
    assert restored == result
    assert restored.stats == result.stats
    assert restored.per_core_cycles == result.per_core_cycles


def test_corrupt_entries_read_as_misses(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    unit = _unit(accesses_per_core=200)
    key = unit_key(unit, ENGINE_VERSION)
    cache.put(key, unit.execute())
    with open(cache._path(key), "wb") as fh:
        fh.write(b"not a pickle")
    assert cache.get(key) is None


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    result = _unit(accesses_per_core=200).execute()
    cache.put("aa" * 32, result)
    cache.put("bb" * 32, result)
    assert cache.clear() == 2
    assert len(cache) == 0


def test_workload_fingerprint_tracks_content():
    wl_a = build_multithreaded(
        get_workload("olio"), 2, accesses_per_core=200, seed=1
    )
    wl_same = build_multithreaded(
        get_workload("olio"), 2, accesses_per_core=200, seed=1
    )
    wl_other_seed = build_multithreaded(
        get_workload("olio"), 2, accesses_per_core=200, seed=2
    )
    assert workload_fingerprint(wl_a) == workload_fingerprint(wl_same)
    assert workload_fingerprint(wl_a) != workload_fingerprint(wl_other_seed)
