"""The sweep data plane: zero-copy fan-out proven bit-identical.

The acceptance contract of the trace-store path: the PR 4 differential
corpus — every interconnect, faults, observability, storms, shootdowns
— executed through shared-artifact fan-out with cost-aware scheduling
must match the serial ``jobs=1`` reference bit-for-bit, and result
cache keys must be unchanged (a cache written by the store-less serial
runner replays into the data plane as pure hits).
"""

import json

import pytest

from tests._corpus import differential_corpus

from repro.exec.cache import canonical_json
from repro.exec.runner import Runner, _unit_cost
from repro.exec.trace_store import _clear_attachments
from repro.obs import write_obs_jsonl
from repro.sim import configs as cfg
from repro.sim.engine import StormConfig
from repro.sim.scenario import Scenario


@pytest.fixture(autouse=True)
def _fresh_attachments():
    _clear_attachments()
    yield
    _clear_attachments()


def _corpus_units():
    return [scenario.units()[0] for _, scenario in differential_corpus()]


def _labelled(units, results):
    return [
        (unit.config.name, unit.workload.name, result)
        for unit, result in zip(units, results)
    ]


def test_differential_corpus_through_fanout_is_bit_identical(tmp_path):
    units = _corpus_units()
    reference = Runner(jobs=1).execute_units(units)
    serial_store = Runner(
        jobs=1, trace_store=str(tmp_path / "store")
    ).execute_units(units)
    fanout = Runner(
        jobs=2, trace_store=str(tmp_path / "store")
    ).execute_units(units)
    assert canonical_json(serial_store) == canonical_json(reference)
    assert canonical_json(fanout) == canonical_json(reference)

    ref_path = tmp_path / "ref.jsonl"
    fan_path = tmp_path / "fan.jsonl"
    write_obs_jsonl(str(ref_path), _labelled(units, reference))
    write_obs_jsonl(str(fan_path), _labelled(units, fanout))
    assert ref_path.read_bytes() == fan_path.read_bytes()


def test_result_cache_keys_unchanged_by_data_plane(tmp_path):
    # A cache populated by the plain serial runner must replay into the
    # trace-store fan-out as pure hits: artifact attachment is not a
    # cache-key input.
    units = _corpus_units()
    cache_dir = str(tmp_path / "cache")
    seeded = Runner(jobs=1, cache_dir=cache_dir)
    reference = seeded.execute_units(units)
    assert seeded.stats == {"hits": 0, "misses": len(units)}

    warm = Runner(jobs=2, cache_dir=cache_dir, trace_store=str(tmp_path / "s"))
    replayed = warm.execute_units(units)
    assert warm.stats == {"hits": len(units), "misses": 0}
    assert warm.trace_stats["builds"] == 0  # hits never stage artifacts
    assert canonical_json(replayed) == canonical_json(reference)


def test_run_prebuilt_through_store_is_bit_identical(tmp_path):
    from repro.workloads.generators import build_multithreaded
    from repro.workloads.registry import get_workload

    workload = build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=300, seed=5
    )
    lineup = [cfg.private(4), cfg.nocstar(4)]
    reference = Runner(jobs=1).run_prebuilt(workload, lineup)
    store = Runner(jobs=2, trace_store=str(tmp_path / "s"))
    fanned = store.run_prebuilt(workload, lineup)
    assert store.trace_stats["builds"] == 1
    assert canonical_json(fanned.results) == canonical_json(reference.results)


def test_lineup_dedup_builds_once_and_reuses_across_runners(tmp_path):
    scenario = Scenario(
        configurations=(cfg.private(4), cfg.distributed(4), cfg.nocstar(4)),
        workloads=("gups", "olio"),
        accesses_per_core=200,
        seed=3,
    )
    cold = Runner(jobs=2, trace_store=str(tmp_path / "s"))
    cold.run(scenario)
    # 3 configs x 2 workloads = 6 units but only 2 distinct signatures.
    assert cold.trace_stats["builds"] == 2
    warm = Runner(jobs=2, trace_store=str(tmp_path / "s"))
    warm.run(scenario)
    assert warm.trace_stats["builds"] == 0


def test_cost_model_orders_the_obvious_cases():
    def unit(config, **overrides):
        scenario = Scenario(
            configurations=(config,),
            workloads="gups",
            accesses_per_core=400,
            baseline_name=config.name,
            **overrides,
        )
        return scenario.units()[0]

    assert _unit_cost(unit(cfg.nocstar(8))) > _unit_cost(unit(cfg.private(8)))
    assert _unit_cost(unit(cfg.private(8))) > _unit_cost(unit(cfg.ideal(8)))
    assert _unit_cost(unit(cfg.private(16))) > _unit_cost(unit(cfg.private(8)))
    assert _unit_cost(
        unit(cfg.private(8), storm=StormConfig(period=4000))
    ) == pytest.approx(2.0 * _unit_cost(unit(cfg.private(8))))


def test_telemetry_schema_3_splits_build_and_sim(tmp_path):
    cache_dir = tmp_path / "cache"
    scenario = Scenario(
        configurations=(cfg.private(4), cfg.nocstar(4)),
        workloads="olio",
        accesses_per_core=300,
        seed=3,
    )
    store = str(tmp_path / "s")
    Runner(cache_dir=str(cache_dir), trace_store=store).run_one(scenario)
    Runner(cache_dir=str(cache_dir), trace_store=store).run_one(scenario)
    lines = [
        json.loads(line)
        for line in (cache_dir / "telemetry.jsonl").read_text().splitlines()
    ]
    assert all(record["schema"] == 3 for record in lines)

    summaries = [r for r in lines if r.get("record") == "trace_store"]
    unit_records = [r for r in lines if "cache" in r]
    # One summary from the cold run (which built the one artifact); the
    # warm run was all hits — nothing staged, no summary line.
    assert [r["builds"] for r in summaries] == [1]
    assert [r["cache"] for r in unit_records] == ["miss", "miss", "hit", "hit"]
    for record in unit_records:
        if record["cache"] == "miss":
            assert record["sim_s"] > 0.0
            assert record["build_s"] >= 0.0
            assert record["wall_s"] == pytest.approx(
                record["build_s"] + record["sim_s"], abs=1e-5
            )
        else:  # hits never build or simulate
            assert record["build_s"] == 0.0 and record["sim_s"] == 0.0
            assert record["wall_s"] >= 0.0

    # The report loader must classify unit records as runs and skip the
    # store summaries (they carry neither kind nor cycles/metrics).
    from repro.obs import load_obs_records

    runs, events = load_obs_records([str(cache_dir / "telemetry.jsonl")])
    assert len(runs) == len(unit_records) and not events
