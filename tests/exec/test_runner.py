"""Runner: parallel fan-out, result caching, telemetry, determinism."""

import json
import time

import pytest

from repro.exec.runner import Runner
from repro.sim import configs as cfg
from repro.sim.run import run_suite
from repro.sim.scenario import Scenario
from repro.workloads.generators import build_multithreaded
from repro.workloads.registry import get_workload


def _scenario(**overrides):
    base = dict(
        configurations=(cfg.private(4), cfg.nocstar(4)),
        workloads="olio",
        accesses_per_core=600,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


def test_parallel_results_bit_identical_to_serial():
    scenario = _scenario(workloads=("olio", "gups"))
    serial = Runner(jobs=1).run(scenario)
    parallel = Runner(jobs=4).run(scenario)
    assert set(serial) == set(parallel)
    for name in serial:
        assert serial[name].results == parallel[name].results
        for config_name, result in serial[name].results.items():
            twin = parallel[name].results[config_name]
            assert result.per_core_cycles == twin.per_core_cycles
            assert result.stats == twin.stats
            assert result.energy == twin.energy
            assert result.network == twin.network


def test_cache_hit_returns_stored_result(tmp_path):
    scenario = _scenario()
    cold_runner = Runner(jobs=1, cache_dir=str(tmp_path / "c"))
    cold = cold_runner.run_one(scenario)
    assert cold_runner.stats == {"hits": 0, "misses": 2}
    warm_runner = Runner(jobs=1, cache_dir=str(tmp_path / "c"))
    warm = warm_runner.run_one(scenario)
    assert warm_runner.stats == {"hits": 2, "misses": 0}
    assert warm.results == cold.results


def test_engine_version_bump_invalidates(tmp_path):
    scenario = _scenario(accesses_per_core=300)
    first = Runner(cache_dir=str(tmp_path), engine_version="v1")
    first.run_one(scenario)
    stale = Runner(cache_dir=str(tmp_path), engine_version="v2")
    stale.run_one(scenario)
    assert stale.stats == {"hits": 0, "misses": 2}
    fresh = Runner(cache_dir=str(tmp_path), engine_version="v1")
    fresh.run_one(scenario)
    assert fresh.stats == {"hits": 2, "misses": 0}


def test_no_cache_runner_never_touches_disk(tmp_path):
    runner = Runner(cache_dir=str(tmp_path / "c"), use_cache=False)
    runner.run_one(_scenario(accesses_per_core=200))
    assert runner.cache is None
    assert not (tmp_path / "c").exists()


def test_telemetry_records_hits_and_misses(tmp_path):
    cache_dir = tmp_path / "c"
    scenario = _scenario(accesses_per_core=300)
    Runner(cache_dir=str(cache_dir)).run_one(scenario)
    Runner(cache_dir=str(cache_dir)).run_one(scenario)
    lines = [
        json.loads(line)
        for line in (cache_dir / "telemetry.jsonl").read_text().splitlines()
    ]
    assert len(lines) == 4
    assert [rec["cache"] for rec in lines] == ["miss", "miss", "hit", "hit"]
    for rec in lines:
        assert rec["workload"] == "olio"
        assert rec["config"] in {"private", "nocstar"}
        assert rec["cycles"] > 0
        assert rec["wall_s"] >= 0
        assert len(rec["key"]) == 64


def test_warm_cache_rerun_at_least_5x_faster(tmp_path):
    """Acceptance criterion: warm re-run of a sweep is >= 5x faster."""
    scenario = _scenario(
        workloads=("olio", "gups"), accesses_per_core=3_000, seed=11
    )
    cold_runner = Runner(jobs=1, cache_dir=str(tmp_path / "c"))
    start = time.perf_counter()
    cold = cold_runner.run(scenario)
    cold_s = time.perf_counter() - start
    assert cold_runner.stats["misses"] == 4

    warm_runner = Runner(jobs=1, cache_dir=str(tmp_path / "c"))
    start = time.perf_counter()
    warm = warm_runner.run(scenario)
    warm_s = time.perf_counter() - start
    assert warm_runner.stats == {"hits": 4, "misses": 0}
    for name in cold:
        assert warm[name].results == cold[name].results
    assert warm_s < cold_s / 5, (
        f"warm rerun {warm_s:.3f}s vs cold {cold_s:.3f}s"
    )


def test_run_suite_with_jobs_matches_serial():
    scenario = _scenario(accesses_per_core=400)
    assert (
        run_suite(scenario, jobs=4)["olio"].results
        == run_suite(scenario)["olio"].results
    )


def test_missing_baseline_rejected():
    scenario = _scenario(
        configurations=(cfg.nocstar(4),), accesses_per_core=100
    )
    with pytest.raises(ValueError, match="baseline"):
        Runner().run(scenario)


def test_run_one_requires_single_workload():
    with pytest.raises(ValueError, match="single-workload"):
        Runner().run_one(_scenario(workloads=("olio", "gups")))


def test_run_prebuilt_parallel_and_cached(tmp_path):
    workload = build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=500, seed=3
    )
    configs = [cfg.private(4), cfg.nocstar(4)]
    plain = Runner(jobs=1).run_prebuilt(workload, configs)
    fanned = Runner(jobs=2).run_prebuilt(workload, configs)
    assert plain.results == fanned.results

    cached = Runner(cache_dir=str(tmp_path / "c"))
    first = cached.run_prebuilt(workload, configs)
    assert cached.stats == {"hits": 0, "misses": 2}
    second = cached.run_prebuilt(workload, configs)
    assert cached.stats == {"hits": 2, "misses": 0}
    assert first.results == second.results == plain.results


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        Runner(jobs=0)
