"""Determinism of observed runs across execution strategies.

ISSUE satellite: serial (jobs=1), parallel (jobs=4), and cache-replayed
executions of the same scenario must produce byte-identical metric
snapshots and trace exports.
"""

import json

from repro.exec.runner import TELEMETRY_SCHEMA, Runner
from repro.obs import write_obs_jsonl
from repro.sim import configs as cfg
from repro.sim.scenario import Scenario


def _scenario(trace=True):
    return Scenario(
        configurations=(cfg.private(4), cfg.nocstar(4)),
        workloads=("gups", "olio"),
        accesses_per_core=400,
        seed=7,
        metrics=True,
        trace=trace,
    )


def _canonical(comparisons):
    """Byte-stable rendering of every run's snapshot and trace."""
    blob = {}
    for workload, comparison in sorted(comparisons.items()):
        for config, result in sorted(comparison.results.items()):
            blob[f"{config}/{workload}"] = {
                "metrics": result.metrics,
                "trace": result.trace,
            }
    return json.dumps(blob, sort_keys=True)


def test_serial_parallel_and_replay_are_byte_identical(tmp_path):
    scenario = _scenario()
    serial = Runner(jobs=1, cache_dir=None).run(scenario)
    parallel = Runner(jobs=4, cache_dir=None).run(scenario)
    assert _canonical(serial) == _canonical(parallel)

    cache_dir = str(tmp_path / "cache")
    cold_runner = Runner(jobs=1, cache_dir=cache_dir)
    cold = cold_runner.run(scenario)
    assert cold_runner.stats == {"hits": 0, "misses": 4}
    warm_runner = Runner(jobs=1, cache_dir=cache_dir)
    warm = warm_runner.run(scenario)
    assert warm_runner.stats == {"hits": 4, "misses": 0}
    assert _canonical(serial) == _canonical(cold) == _canonical(warm)


def test_trace_export_is_byte_identical_across_strategies(tmp_path):
    scenario = _scenario()
    paths = []
    for name, jobs in (("serial", 1), ("parallel", 3)):
        comparisons = Runner(jobs=jobs, cache_dir=None).run(scenario)
        labelled = [
            (config, workload, result)
            for workload, comparison in comparisons.items()
            for config, result in comparison.results.items()
        ]
        path = tmp_path / f"{name}.jsonl"
        write_obs_jsonl(str(path), labelled)
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_observed_and_plain_units_do_not_alias_in_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    plain = Scenario(
        configurations=cfg.nocstar(4),
        workloads="gups",
        accesses_per_core=300,
        seed=7,
        baseline_name="nocstar",
    )
    runner = Runner(jobs=1, cache_dir=cache_dir)
    runner.run(plain)
    assert runner.stats["misses"] == 1
    observed = Scenario(
        configurations=cfg.nocstar(4),
        workloads="gups",
        accesses_per_core=300,
        seed=7,
        baseline_name="nocstar",
        metrics=True,
    )
    runner2 = Runner(jobs=1, cache_dir=cache_dir)
    comparisons = runner2.run(observed)
    # Different cache key: the observed unit must re-simulate, and the
    # replayed result must actually carry its snapshot.
    assert runner2.stats == {"hits": 0, "misses": 1}
    result = comparisons["gups"].results["nocstar"]
    assert result.metrics is not None


def test_telemetry_embeds_schema_and_metrics(tmp_path):
    cache_dir = str(tmp_path / "cache")
    scenario = Scenario(
        configurations=cfg.nocstar(4),
        workloads="gups",
        accesses_per_core=300,
        seed=7,
        baseline_name="nocstar",
        metrics=True,
    )
    Runner(jobs=1, cache_dir=cache_dir).run(scenario)
    Runner(jobs=1, cache_dir=cache_dir).run(scenario)  # warm: a hit record
    telemetry = (tmp_path / "cache" / "telemetry.jsonl").read_text()
    records = [json.loads(line) for line in telemetry.splitlines()]
    assert len(records) == 2
    miss, hit = records
    assert miss["cache"] == "miss" and hit["cache"] == "hit"
    for record in records:
        assert record["schema"] == TELEMETRY_SCHEMA
        assert record["metrics"]["histograms"]["translation.stall_cycles"]
        # Hit records time the cache read; never the 0.0 of schema 1.
        assert record["wall_s"] > 0.0
