"""Workload trace persistence."""

import pytest

from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.vm.address import PAGE_2M, PAGE_4K
from repro.workloads.generators import build_multithreaded
from repro.workloads.io import (
    load_workload,
    save_workload,
    workload_from_records,
)
from repro.workloads.registry import get_workload


@pytest.fixture()
def workload():
    return build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=400, seed=5, smt=2
    )


def test_round_trip_preserves_everything(tmp_path, workload):
    path = tmp_path / "trace.npz"
    save_workload(workload, path)
    loaded = load_workload(path)
    assert loaded.name == workload.name
    assert loaded.seed == workload.seed
    assert loaded.superpages == workload.superpages
    assert loaded.traces == workload.traces
    assert loaded.info == workload.info


def test_loaded_trace_simulates_identically(tmp_path, workload):
    path = tmp_path / "trace.npz"
    save_workload(workload, path)
    loaded = load_workload(path)
    a = simulate(cfg.nocstar(4), workload)
    b = simulate(cfg.nocstar(4), loaded)
    assert a.cycles == b.cycles
    assert a.stats.l2_misses == b.stats.l2_misses


def test_version_check(tmp_path, workload):
    import json
    import numpy as np

    path = tmp_path / "trace.npz"
    save_workload(workload, path)
    data = dict(np.load(path))
    meta = json.loads(bytes(data["meta"]).decode())
    meta["version"] = 99
    data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_workload(path)


def test_from_records_builds_runnable_workload():
    records = [
        [(2, 1, PAGE_4K, 100 + i) for i in range(50)],
        [(3, 1, PAGE_2M, i % 5) for i in range(50)],
    ]
    wl = workload_from_records("custom", records)
    assert wl.num_cores == 2
    result = simulate(cfg.private(2), wl)
    assert result.stats.l1_accesses == 100


def test_from_records_validation():
    with pytest.raises(ValueError, match="empty"):
        workload_from_records("x", [[]])
    with pytest.raises(ValueError, match="gap"):
        workload_from_records("x", [[(0, 1, PAGE_4K, 1)]])
    with pytest.raises(ValueError, match="page size"):
        workload_from_records("x", [[(1, 1, 8192, 1)]])
    with pytest.raises(ValueError, match="negative"):
        workload_from_records("x", [[(1, -1, PAGE_4K, 1)]])
    with pytest.raises(ValueError, match="need"):
        workload_from_records("x", [[(1, 1, PAGE_4K)]])
