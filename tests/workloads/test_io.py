"""Workload trace persistence."""

import pytest

from repro.sim import configs as cfg
from repro.sim.engine import simulate
from repro.vm.address import PAGE_2M, PAGE_4K
from repro.workloads.generators import build_multithreaded
from repro.workloads.io import (
    load_workload,
    load_workload_packed,
    pack_workload,
    save_workload,
    save_workload_packed,
    unpack_traces,
    workload_from_records,
)
from repro.workloads.registry import get_workload
from repro.workloads.trace import Workload


@pytest.fixture()
def workload():
    return build_multithreaded(
        get_workload("olio"), 4, accesses_per_core=400, seed=5, smt=2
    )


def test_round_trip_preserves_everything(tmp_path, workload):
    path = tmp_path / "trace.npz"
    save_workload(workload, path)
    loaded = load_workload(path)
    assert loaded.name == workload.name
    assert loaded.seed == workload.seed
    assert loaded.superpages == workload.superpages
    assert loaded.traces == workload.traces
    assert loaded.info == workload.info


def test_loaded_trace_simulates_identically(tmp_path, workload):
    path = tmp_path / "trace.npz"
    save_workload(workload, path)
    loaded = load_workload(path)
    a = simulate(cfg.nocstar(4), workload)
    b = simulate(cfg.nocstar(4), loaded)
    assert a.cycles == b.cycles
    assert a.stats.l2_misses == b.stats.l2_misses


def test_version_check(tmp_path, workload):
    import json
    import numpy as np

    path = tmp_path / "trace.npz"
    save_workload(workload, path)
    data = dict(np.load(path))
    meta = json.loads(bytes(data["meta"]).decode())
    meta["version"] = 99
    data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_workload(path)


# ----------------------------------------------------------------------
# packed (memmap-friendly) layout


def _assert_identical(loaded, original):
    assert loaded.name == original.name
    assert loaded.seed == original.seed
    assert loaded.superpages == original.superpages
    assert loaded.traces == original.traces
    assert loaded.info == original.info


def _assert_exact_record_types(loaded):
    """Records must be tuples of Python int — never np.int64 (which
    would leak into cycles, telemetry JSON, and cache keys)."""
    for core in loaded.traces:
        for stream in core:
            for record in stream:
                assert type(record) is tuple and len(record) == 4
                for value in record:
                    assert type(value) is int


@pytest.mark.parametrize("mmap", [True, False])
def test_packed_round_trip_multi_stream(tmp_path, workload, mmap):
    assert workload.smt == 2  # multi-stream by construction
    path = save_workload_packed(workload, tmp_path / "trace.npy")
    loaded = load_workload_packed(path, mmap=mmap)
    _assert_identical(loaded, workload)
    _assert_exact_record_types(loaded)


@pytest.mark.parametrize("mmap", [True, False])
def test_packed_round_trip_single_record(tmp_path, mmap):
    original = Workload(
        name="one",
        traces=[[[(3, 7, PAGE_2M, 42)]]],
        seed=11,
        superpages=True,
        info={"asids": 8},
    )
    path = save_workload_packed(original, tmp_path / "one.npy")
    loaded = load_workload_packed(path, mmap=mmap)
    _assert_identical(loaded, original)
    _assert_exact_record_types(loaded)
    assert loaded.traces[0][0][0] == (3, 7, PAGE_2M, 42)


@pytest.mark.parametrize("mmap", [True, False])
def test_packed_round_trip_empty(tmp_path, mmap):
    # Zero cores, and cores whose streams are empty, both round-trip.
    for name, traces in (("none", []), ("hollow", [[], [[]]])):
        original = Workload(
            name=name, traces=traces, seed=0, superpages=False
        )
        path = save_workload_packed(original, tmp_path / f"{name}.npy")
        loaded = load_workload_packed(path, mmap=mmap)
        _assert_identical(loaded, original)


def test_pack_unpack_is_the_identity(workload):
    data, offsets, streams_per_core, meta = pack_workload(workload)
    assert data.dtype.name == "int64" and data.shape[1] == 4
    assert data.shape[0] == workload.total_accesses
    assert unpack_traces(data, offsets, streams_per_core) == workload.traces
    assert meta["superpages"] == workload.superpages


def test_packed_loaded_trace_simulates_identically(tmp_path, workload):
    path = save_workload_packed(workload, tmp_path / "trace.npy")
    loaded = load_workload_packed(path)
    a = simulate(cfg.nocstar(4), workload)
    b = simulate(cfg.nocstar(4), loaded)
    assert a.cycles == b.cycles
    assert a.stats == b.stats


def test_packed_version_check(tmp_path, workload):
    import json

    path = save_workload_packed(workload, tmp_path / "trace.npy")
    sidecar = path.with_suffix(".json")
    meta = json.loads(sidecar.read_text())
    meta["version"] = 99
    sidecar.write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="version"):
        load_workload_packed(path)


def test_packed_shape_check(tmp_path, workload):
    import numpy as np

    path = save_workload_packed(workload, tmp_path / "trace.npy")
    np.save(path, np.zeros((3, 5), dtype=np.int64))
    with pytest.raises(ValueError, match="shape"):
        load_workload_packed(path)


def test_from_records_builds_runnable_workload():
    records = [
        [(2, 1, PAGE_4K, 100 + i) for i in range(50)],
        [(3, 1, PAGE_2M, i % 5) for i in range(50)],
    ]
    wl = workload_from_records("custom", records)
    assert wl.num_cores == 2
    result = simulate(cfg.private(2), wl)
    assert result.stats.l1_accesses == 100


def test_from_records_validation():
    with pytest.raises(ValueError, match="empty"):
        workload_from_records("x", [[]])
    with pytest.raises(ValueError, match="gap"):
        workload_from_records("x", [[(0, 1, PAGE_4K, 1)]])
    with pytest.raises(ValueError, match="page size"):
        workload_from_records("x", [[(1, 1, 8192, 1)]])
    with pytest.raises(ValueError, match="negative"):
        workload_from_records("x", [[(1, -1, PAGE_4K, 1)]])
    with pytest.raises(ValueError, match="need"):
        workload_from_records("x", [[(1, 1, PAGE_4K)]])
