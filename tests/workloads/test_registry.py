"""The paper's workload roster."""

import pytest

from repro.workloads.registry import WORKLOAD_NAMES, WORKLOADS, get_workload


def test_all_eleven_paper_workloads_present():
    assert set(WORKLOAD_NAMES) == {
        "graph500", "canneal", "xsbench", "datacaching", "swtesting",
        "graphanalytics", "nutch", "olio", "redis", "mongodb", "gups",
    }


def test_get_workload():
    assert get_workload("gups").name == "gups"


def test_unknown_workload_names_known_ones():
    with pytest.raises(KeyError, match="graph500"):
        get_workload("doom")


def test_gups_is_uniform_random():
    gups = get_workload("gups")
    assert gups.cold_alpha == 0.0
    assert gups.seq_fraction == 0.0


def test_poor_locality_workloads_have_big_cold_pools():
    """canneal / xsbench / gups: the paper's shared-TLB winners."""
    avg_cold = sum(
        WORKLOADS[n].cold_fraction for n in WORKLOAD_NAMES
    ) / len(WORKLOAD_NAMES)
    for name in ("canneal", "xsbench", "gups"):
        assert WORKLOADS[name].cold_fraction >= avg_cold


def test_superpage_fractions_in_paper_band():
    """§V: 50-80% of each footprint ends up in superpages."""
    for spec in WORKLOADS.values():
        assert 0.5 <= spec.superpage_fraction <= 0.8
