"""Multiprogrammed combination enumeration."""

from repro.workloads.multiprog import (
    combinations_of_four,
    sample_combinations,
)


def test_330_combinations():
    """C(11, 4) = 330 — the paper's Fig 18 population."""
    assert len(combinations_of_four()) == 330


def test_combinations_unique_and_sorted_within():
    combos = combinations_of_four()
    assert len(set(combos)) == 330
    assert all(len(set(c)) == 4 for c in combos)


def test_sample_is_deterministic():
    assert sample_combinations(10, seed=3) == sample_combinations(10, seed=3)


def test_sample_subset_of_population():
    population = set(combinations_of_four())
    assert set(sample_combinations(25)) <= population


def test_sample_all_returns_everything():
    assert len(sample_combinations(1000)) == 330
