"""Pathological microbenchmarks."""

from repro.workloads.microbench import (
    STORM_EVENTS_PER_RUN,
    build_slice_hammer,
    storm_config_for,
)


def test_storm_period_scales_with_trace():
    short = storm_config_for(1000)
    long = storm_config_for(100_000)
    assert long.period > short.period
    assert short.burst_entries == 512  # one 2MB promotion


def test_storm_fires_expected_number_of_times():
    config = storm_config_for(10_000, mean_gap=5.0)
    expected_cycles = 10_000 * 6 * 1.6
    fires = expected_cycles // config.period
    assert STORM_EVENTS_PER_RUN - 2 <= fires <= STORM_EVENTS_PER_RUN + 2


def test_slice_hammer_all_target_victim():
    wl = build_slice_hammer(8, accesses_per_core=500, victim_slice=3)
    for core in range(8):
        for _, _, _, pn in wl.traces[core][0]:
            assert pn % 8 == 3


def test_slice_hammer_default_victim_is_last_core():
    wl = build_slice_hammer(8, accesses_per_core=10)
    assert wl.info["victim_slice"] == 7


def test_slice_hammer_deterministic():
    a = build_slice_hammer(4, accesses_per_core=100, seed=5)
    b = build_slice_hammer(4, accesses_per_core=100, seed=5)
    assert a.traces == b.traces


def test_slice_hammer_validates_victim():
    import pytest

    with pytest.raises(ValueError):
        build_slice_hammer(8, victim_slice=8)
