"""Workload spec validation."""

import pytest

from repro.workloads.spec import WorkloadSpec


def make(**overrides):
    base = dict(
        name="test",
        hot_pages=64,
        hot_fraction=0.9,
        warm_pages=512,
        warm_fraction=0.04,
        footprint_pages=10_000,
        cold_alpha=0.8,
        seq_fraction=0.3,
        lib_fraction=0.02,
        mean_gap=5.0,
        superpage_fraction=0.6,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def test_cold_fraction_is_remainder():
    spec = make()
    assert spec.cold_fraction == pytest.approx(1 - 0.9 - 0.04 - 0.02)


def test_rejects_overfull_fractions():
    with pytest.raises(ValueError):
        make(hot_fraction=0.9, warm_fraction=0.2)


def test_rejects_empty_pools():
    with pytest.raises(ValueError):
        make(hot_pages=0)
    with pytest.raises(ValueError):
        make(footprint_pages=0)


def test_rejects_bad_seq():
    with pytest.raises(ValueError):
        make(seq_fraction=1.0)


def test_rejects_sub_cycle_gap():
    with pytest.raises(ValueError):
        make(mean_gap=0.5)


def test_with_superpages_toggle():
    spec = make(superpage_fraction=0.6)
    assert spec.with_superpages(True).superpage_fraction == 0.6
    assert spec.with_superpages(False).superpage_fraction == 0.0
    assert spec.with_superpages(False).name == spec.name


def test_scaled_footprint():
    spec = make(footprint_pages=10_000)
    assert spec.scaled_footprint(0.5).footprint_pages == 5_000
    assert spec.scaled_footprint(0.0001).footprint_pages == 1024  # floor
