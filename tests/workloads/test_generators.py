"""Trace generation: structure, determinism, and pool statistics."""

import numpy as np
import pytest

from repro.vm.address import PAGE_2M, PAGE_4K
from repro.workloads.generators import (
    LIB_POOL_PAGES,
    PagePool,
    ZipfSampler,
    build_multiprogrammed,
    build_multithreaded,
)
from repro.workloads.registry import WORKLOADS, get_workload
from repro.workloads.spec import WorkloadSpec
from repro.vm.address_space import VpnAllocator


def small_spec(**overrides):
    base = dict(
        name="tiny", hot_pages=16, hot_fraction=0.6, warm_pages=128,
        warm_fraction=0.2, footprint_pages=2048, cold_alpha=0.8,
        seq_fraction=0.3, lib_fraction=0.05, mean_gap=3.0,
        superpage_fraction=0.5,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def test_zipf_sampler_head_concentration():
    sampler = ZipfSampler(10_000, 1.0)
    assert sampler.head_mass(100) > 0.4
    uniform = ZipfSampler(10_000, 0.0)
    assert uniform.head_mass(100) == pytest.approx(0.01)


def test_zipf_sampler_range():
    sampler = ZipfSampler(100, 0.9, permute_seed=1)
    draws = sampler.sample(1000, np.random.default_rng(0))
    assert draws.min() >= 0 and draws.max() < 100


def test_zipf_permutation_scatters_head():
    """With permutation, the hottest page is not index 0."""
    plain = ZipfSampler(10_000, 1.2)
    perm = ZipfSampler(10_000, 1.2, permute_seed=3)
    rng = np.random.default_rng(0)
    plain_mode = np.bincount(plain.sample(5000, rng)).argmax()
    assert plain_mode == 0
    rng = np.random.default_rng(0)
    perm_draws = perm.sample(5000, rng)
    assert np.bincount(perm_draws).argmax() != 0


def test_page_pool_split():
    pool = PagePool.build(VpnAllocator(), 2048, asid=1,
                          superpage_fraction=0.5, shared=False)
    assert pool.super_pages == 1024
    sizes, numbers = pool.translate(np.array([0, 1023, 1024, 2047]))
    assert list(sizes) == [PAGE_2M, PAGE_2M, PAGE_4K, PAGE_4K]


def test_page_pool_shared_uses_global_asid():
    pool = PagePool.build(VpnAllocator(), 64, asid=5,
                          superpage_fraction=0.0, shared=True)
    assert pool.asid == 0


def test_multithreaded_structure():
    wl = build_multithreaded(small_spec(), 4, accesses_per_core=500, seed=1)
    assert wl.num_cores == 4
    assert wl.smt == 1
    assert wl.total_accesses == 2000
    gap, asid, size, pn = wl.traces[0][0][0]
    assert gap >= 1 and size in (PAGE_4K, PAGE_2M) and pn >= 0


def test_determinism_under_seed():
    a = build_multithreaded(small_spec(), 2, accesses_per_core=300, seed=9)
    b = build_multithreaded(small_spec(), 2, accesses_per_core=300, seed=9)
    assert a.traces == b.traces


def test_different_seeds_differ():
    a = build_multithreaded(small_spec(), 2, accesses_per_core=300, seed=1)
    b = build_multithreaded(small_spec(), 2, accesses_per_core=300, seed=2)
    assert a.traces != b.traces


def test_superpages_disabled_yields_only_4k():
    wl = build_multithreaded(
        small_spec(), 2, accesses_per_core=500, seed=1, superpages=False
    )
    sizes = {r[2] for core in wl.traces for s in core for r in s}
    assert sizes == {PAGE_4K}


def test_superpages_enabled_yields_both():
    wl = build_multithreaded(small_spec(), 2, accesses_per_core=500, seed=1)
    sizes = {r[2] for core in wl.traces for s in core for r in s}
    assert sizes == {PAGE_4K, PAGE_2M}


def test_lib_accesses_tagged_global():
    wl = build_multithreaded(
        small_spec(lib_fraction=0.15, warm_fraction=0.1),
        2, accesses_per_core=2000, seed=1,
    )
    asids = {r[1] for core in wl.traces for s in core for r in s}
    assert asids == {0, 1}


def test_sequential_runs_present():
    """Adjacent page numbers appear consecutively at roughly the
    configured seq rate."""
    wl = build_multithreaded(
        small_spec(seq_fraction=0.6, superpage_fraction=0.0),
        1, accesses_per_core=5000, seed=2, superpages=False,
    )
    stream = wl.traces[0][0]
    consecutive = sum(
        1 for a, b in zip(stream, stream[1:]) if b[3] == a[3] + 1
    )
    assert consecutive / len(stream) > 0.4


def test_gaps_follow_mean():
    wl = build_multithreaded(
        small_spec(mean_gap=6.0), 1, accesses_per_core=5000, seed=3
    )
    gaps = [r[0] for r in wl.traces[0][0]]
    assert 5.0 <= sum(gaps) / len(gaps) <= 7.0


def test_smt_builds_streams():
    wl = build_multithreaded(
        small_spec(), 2, accesses_per_core=200, seed=1, smt=2
    )
    assert wl.smt == 2
    assert wl.total_accesses == 2 * 2 * 200


def test_multiprogrammed_asids_and_cores():
    specs = [small_spec(), small_spec(name="tiny2")]
    wl = build_multiprogrammed(specs, 4, accesses_per_core=300, seed=1)
    assert wl.num_cores == 4
    first_app = {r[1] for s in wl.traces[0] for r in s}
    second_app = {r[1] for s in wl.traces[2] for r in s}
    assert 1 in first_app and 2 in second_app
    assert 2 not in first_app and 1 not in second_app
    assert wl.info["apps"] == {"tiny": [0, 1], "tiny2": [2, 3]}


def test_multiprogrammed_rejects_uneven_split():
    with pytest.raises(ValueError):
        build_multiprogrammed([small_spec()] * 3, 4, 100)


def test_multithreaded_cores_share_cold_pool():
    """The sharing the shared TLB exploits: different cores reference
    the same pages of the app pool."""
    wl = build_multithreaded(
        get_workload("canneal"), 4, accesses_per_core=4000, seed=1
    )
    pages = [
        {r[3] for r in wl.traces[core][0]} for core in range(4)
    ]
    overlap = pages[0] & pages[1] & pages[2] & pages[3]
    assert len(overlap) >= 20


def test_zipf_cdf_memoised_per_n_alpha():
    """Every core of a workload samples the same (n, alpha) CDF; the
    process-wide memo means the n-element cumsum happens once."""
    from repro.workloads.generators import _CDF_CACHE, _zipf_cdf

    _CDF_CACHE.clear()
    first = _zipf_cdf(10_000, 1.01)
    assert _zipf_cdf(10_000, 1.01) is first
    assert not first.flags.writeable  # shared: must be immutable
    assert _zipf_cdf(10_000, 0.99) is not first
    assert _zipf_cdf(9_999, 1.01) is not first
    assert len(_CDF_CACHE) == 3


def test_memoised_sampler_output_unchanged():
    """The memo must not perturb generation: two samplers over the
    same distribution draw identical sequences from identical rngs."""
    import numpy as np

    from repro.workloads.generators import _CDF_CACHE, ZipfSampler

    _CDF_CACHE.clear()
    cold = ZipfSampler(5_000, 1.05, permute_seed=9).sample(
        500, np.random.default_rng(3)
    )
    warm = ZipfSampler(5_000, 1.05, permute_seed=9).sample(
        500, np.random.default_rng(3)
    )
    assert cold.tolist() == warm.tolist()
