"""Table rendering helpers."""

from repro.analysis.tables import fmt, render_distribution, render_series, render_table


def test_fmt_floats_and_ints():
    assert fmt(1.23456) == "1.235"
    assert fmt(1.2, precision=1) == "1.2"
    assert fmt(7) == "7"
    assert fmt("x") == "x"


def test_render_table_alignment():
    out = render_table(["name", "v"], [["a", 1.0], ["longer", 2.5]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert all("|" in line for line in (lines[0], lines[2], lines[3]))
    header_pipe = lines[0].index("|")
    assert all(line.index("|") == header_pipe for line in lines[2:])


def test_render_table_with_title():
    out = render_table(["a"], [[1]], title="Fig X")
    assert out.splitlines()[0] == "Fig X"


def test_render_distribution_drops_zeros():
    out = render_distribution("bar", {"1 acc": 0.5, "2-4 acc": 0.0})
    assert "1 acc" in out and "2-4" not in out


def test_render_series():
    out = render_series("curve", [1, 2], [0.5, 0.75])
    assert "curve" in out
    assert "1 -> 0.5" in out
