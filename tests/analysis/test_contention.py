"""Concurrency bucketing (Figs 5/6)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.contention import (
    BUCKET_LABELS,
    bucket_label,
    concurrency_counts,
    concurrency_distribution,
    isolated_fraction,
    merge_distributions,
    per_slice_distribution,
)


def test_bucket_labels_match_paper():
    assert BUCKET_LABELS[0] == "1 acc"
    assert BUCKET_LABELS[1] == "2-4 acc"
    assert BUCKET_LABELS[-1] == "29+ acc"


def test_bucket_label_boundaries():
    assert bucket_label(1) == "1 acc"
    assert bucket_label(2) == bucket_label(4) == "2-4 acc"
    assert bucket_label(5) == "5-8 acc"
    assert bucket_label(29) == bucket_label(1000) == "29+ acc"
    with pytest.raises(ValueError):
        bucket_label(0)


def test_disjoint_intervals_are_isolated():
    intervals = [(0, 10, 0), (20, 30, 0), (40, 50, 1)]
    assert concurrency_counts(intervals) == [1, 1, 1]
    assert isolated_fraction(intervals) == 1.0


def test_overlapping_intervals_counted():
    intervals = [(0, 10, 0), (5, 15, 1), (6, 20, 2)]
    assert concurrency_counts(intervals) == [1, 2, 3]


def test_touching_endpoints_do_not_overlap():
    """An access ending exactly when another starts is not concurrent."""
    assert concurrency_counts([(0, 10, 0), (10, 20, 0)]) == [1, 1]


def test_unsorted_input_handled():
    intervals = [(20, 30, 0), (0, 10, 0), (5, 15, 1)]
    assert sorted(concurrency_counts(intervals)) == [1, 1, 2]


def test_distribution_sums_to_one():
    intervals = [(i, i + 5, i % 4) for i in range(0, 100, 2)]
    dist = concurrency_distribution(intervals)
    assert sum(dist.values()) == pytest.approx(1.0)


def test_empty_distribution():
    dist = concurrency_distribution([])
    assert all(v == 0.0 for v in dist.values())


def test_per_slice_separates_slices():
    """Two overlapping accesses on different slices: no per-slice
    contention, but chip-wide contention."""
    intervals = [(0, 10, 0), (2, 12, 1)]
    chip = concurrency_distribution(intervals)
    per_slice = per_slice_distribution(intervals)
    assert chip["2-4 acc"] == 0.5
    assert per_slice["1 acc"] == 1.0


def test_merge_distributions_averages():
    a = {label: 0.0 for label in BUCKET_LABELS}
    b = {label: 0.0 for label in BUCKET_LABELS}
    a["1 acc"] = 1.0
    b["2-4 acc"] = 1.0
    merged = merge_distributions([a, b])
    assert merged["1 acc"] == 0.5
    assert merged["2-4 acc"] == 0.5


def test_merge_rejects_empty():
    with pytest.raises(ValueError):
        merge_distributions([])


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=1, max_value=50),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=200,
    )
)
def test_concurrency_counts_invariants(raw):
    intervals = [(start, start + dur, sl) for start, dur, sl in raw]
    counts = concurrency_counts(intervals)
    assert len(counts) == len(intervals)
    assert all(1 <= c <= len(intervals) for c in counts)
    # Per-slice concurrency never exceeds chip-wide for the same data.
    chip_iso = isolated_fraction(intervals)
    per_slice = per_slice_distribution(intervals)
    assert per_slice["1 acc"] >= chip_iso - 1e-9
