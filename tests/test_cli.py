"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "graph500" in out and "gups" in out


def test_configs_command(capsys):
    assert main(["configs", "--cores", "32"]) == 0
    out = capsys.readouterr().out
    assert "nocstar" in out and "monolithic" in out
    assert "920" in out  # area-normalised slice size


def test_run_command_small(capsys):
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "800", "--configs", "nocstar",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "private" in out  # baseline auto-added
    assert "speedup" in out


def test_run_command_unknown_config():
    with pytest.raises(SystemExit, match="unknown config"):
        main(["run", "--configs", "hyperloop", "--cores", "4",
              "--accesses", "100"])


def test_run_command_parallel_no_cache(capsys, tmp_path):
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar",
            "--jobs", "2", "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out and "speedup" in out


def test_run_command_cache_roundtrip(capsys, tmp_path):
    args = [
        "run", "--workload", "olio", "--cores", "4",
        "--accesses", "600", "--configs", "nocstar",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "2 miss(es)" in cold.err
    assert main(args) == 0
    warm = capsys.readouterr()
    assert "2 hit(s)" in warm.err
    assert warm.out == cold.out  # cached rerun prints the same table
    assert (tmp_path / "cache" / "telemetry.jsonl").exists()


def test_sweep_command_subset(capsys):
    code = main(
        [
            "sweep", "--cores", "4", "--accesses", "600",
            "--workloads", "olio",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "average" in out


def test_traffic_command(capsys):
    code = main(["traffic", "--tiles", "16", "--cycles", "300"])
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out


def test_export_and_run_trace(tmp_path, capsys):
    trace = tmp_path / "t.npz"
    code = main(
        [
            "export-trace", "--workload", "olio", "--cores", "2",
            "--accesses", "300", "--out", str(trace),
        ]
    )
    assert code == 0
    assert trace.exists()
    code = main(
        ["run", "--trace", str(trace), "--configs", "nocstar",
         "--cores", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out


def test_run_command_metrics_and_trace_out(tmp_path, capsys):
    obs = tmp_path / "obs.jsonl"
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar",
            "--no-cache", "--metrics", "--trace-out", str(obs),
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert obs.exists()
    assert "translation latency" in captured.out
    assert "NoC link utilization" in captured.out
    assert "hottest L2 slices" in captured.out
    # The written obs file feeds the report command directly.
    code = main(["report", str(obs), "--top", "4"])
    assert code == 0
    report = capsys.readouterr().out
    assert "p99" in report
    assert "nocstar/olio" in report
    assert "events" in report


def test_report_command_window(tmp_path, capsys):
    obs = tmp_path / "obs.jsonl"
    assert main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar",
            "--no-cache", "--trace-out", str(obs),
        ]
    ) == 0
    capsys.readouterr()
    assert main(["report", str(obs), "--window", "0:50"]) == 0
    out = capsys.readouterr().out
    assert "window 0..50" in out


def test_report_command_missing_file(capsys):
    # Robust by design: an absent obs file is warned about and skipped,
    # and the report still renders (its empty-input placeholder here).
    assert main(["report", "/nonexistent/obs.jsonl"]) == 0
    captured = capsys.readouterr()
    assert "no such obs file" in captured.err
    assert "no metric snapshots or events" in captured.out


def test_report_command_bad_window(tmp_path):
    obs = tmp_path / "obs.jsonl"
    obs.write_text("")
    with pytest.raises(SystemExit, match="--window"):
        main(["report", str(obs), "--window", "banana"])


def test_run_command_metrics_off_prints_no_report(capsys):
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar", "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "translation latency" not in out


# ----------------------------------------------------------------------
# shared flag groups (parent parsers) and the serving commands


def test_shared_flag_groups_per_command_defaults():
    """run/export-trace/submit keep the full 8k default while the
    sweep-style commands default lighter — and a per-command override
    must not leak through the shared parent parsers."""
    parser = build_parser()
    assert parser.parse_args(["run"]).accesses == 8_000
    assert parser.parse_args(
        ["export-trace", "--out", "x.npz"]
    ).accesses == 8_000
    assert parser.parse_args(["submit"]).accesses == 8_000
    assert parser.parse_args(["sweep"]).accesses == 6_000
    assert parser.parse_args(["faults"]).accesses == 6_000


def test_shared_runner_flags_everywhere():
    """The runner flag group is identical across commands by
    construction; spot-check it parses uniformly."""
    parser = build_parser()
    for command in (["run"], ["sweep"], ["faults"], ["serve"]):
        ns = parser.parse_args(
            command + ["--jobs", "3", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert ns.jobs == 3 and ns.cache_dir == "/tmp/c" and ns.no_cache


def test_run_trace_in_alias():
    parser = build_parser()
    assert parser.parse_args(["run", "--trace-in", "t.npz"]).trace == "t.npz"
    assert parser.parse_args(["run", "--trace", "t.npz"]).trace == "t.npz"


def test_serve_flag_parsing():
    ns = build_parser().parse_args(
        ["serve", "--port", "0", "--jobs", "0", "--quota", "2",
         "--ttl", "60"]
    )
    assert ns.port == 0 and ns.jobs == 0 and ns.quota == 2 and ns.ttl == 60


def test_submit_and_status_against_daemon(capsys):
    from repro.serve import BackgroundDaemon, ServeConfig

    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        code = main(
            [
                "submit", "--url", url, "--workload", "olio",
                "--cores", "4", "--accesses", "600",
                "--configs", "nocstar",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "speedup" in captured.out and "private" in captured.out
        assert "[serve] job" in captured.err

        # A second identical submission coalesces (and is served from
        # the retained job), printing the same table.
        assert main(
            [
                "submit", "--url", url, "--workload", "olio",
                "--cores", "4", "--accesses", "600",
                "--configs", "nocstar",
            ]
        ) == 0
        second = capsys.readouterr()
        assert second.out == captured.out
        assert "coalesced" in second.err

        # --no-wait prints the job id on stdout for scripting.
        assert main(
            [
                "submit", "--url", url, "--workload", "olio",
                "--cores", "4", "--accesses", "600",
                "--configs", "nocstar", "--no-wait",
            ]
        ) == 0
        job_id = capsys.readouterr().out.strip().splitlines()[-1]

        assert main(["status", job_id, "--url", url]) == 0
        status_out = capsys.readouterr().out
        assert job_id in status_out and "nocstar" in status_out

        assert main(["status", "--url", url]) == 0
        health_out = capsys.readouterr().out
        assert "daemon ok" in health_out
        assert "serve.submissions" in health_out


def test_submit_span_out_and_trace_command(tmp_path, capsys):
    from repro.serve import BackgroundDaemon, ServeConfig

    span_path = str(tmp_path / "spans.jsonl")
    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        assert main(
            [
                "submit", "--url", url, "--workload", "olio",
                "--cores", "4", "--accesses", "600",
                "--configs", "nocstar", "--span-out", span_path,
            ]
        ) == 0
    captured = capsys.readouterr()
    assert "[spans] wrote" in captured.err

    assert main(["trace", span_path]) == 0
    rendered = capsys.readouterr().out
    assert "span trace" in rendered and "critical path" in rendered
    # The tree spans every layer of the serving tier.
    for name in ("client.request", "client.submit", "server.submit",
                 "unit.exec", "unit.build", "unit.sim"):
        assert name in rendered, name


def test_run_span_out_local(tmp_path, capsys):
    span_path = str(tmp_path / "run-spans.jsonl")
    assert main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar", "--no-cache",
            "--span-out", span_path,
        ]
    ) == 0
    assert "[spans] wrote" in capsys.readouterr().err
    assert main(["trace", span_path, "--top", "3"]) == 0
    rendered = capsys.readouterr().out
    assert "runner.execute" in rendered
    assert "unit.sim" in rendered


def test_trace_command_missing_file():
    with pytest.raises(SystemExit, match="cannot read"):
        main(["trace", "/nonexistent/spans.jsonl"])


def test_status_watch(capsys):
    from repro.serve import BackgroundDaemon, ServeConfig

    with BackgroundDaemon(ServeConfig(workers=0, quota=0)) as url:
        assert main(
            [
                "submit", "--url", url, "--workload", "olio",
                "--cores", "4", "--accesses", "600",
                "--configs", "nocstar", "--no-wait",
            ]
        ) == 0
        job_id = capsys.readouterr().out.strip().splitlines()[-1]
        assert main(
            ["status", job_id, "--url", url, "--watch", "0.05"]
        ) == 0
        watched = capsys.readouterr()
        assert f"job {job_id}: done" in watched.out
        assert "nocstar" in watched.out


def test_status_shows_storage_stats(tmp_path, capsys):
    from repro.serve import BackgroundDaemon, ServeConfig

    config = ServeConfig(
        workers=0, quota=0, cache_dir=str(tmp_path / "cache")
    )
    with BackgroundDaemon(config) as url:
        assert main(
            [
                "submit", "--url", url, "--workload", "olio",
                "--cores", "4", "--accesses", "600",
                "--configs", "nocstar",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["status", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "[storage] results: 2 entr(ies)" in out


def test_report_degrades_on_pre_schema3_telemetry(tmp_path, capsys):
    """Telemetry written before the build/sim split (schema < 3, or an
    explicit null) renders "-" placeholders instead of crashing."""
    import json

    path = tmp_path / "telemetry.jsonl"
    rows = [
        {"schema": 2, "config": "nocstar", "workload": "gups",
         "cycles": 1234, "cache": "miss"},                  # no keys at all
        {"schema": 3, "config": "private", "workload": "gups",
         "cycles": 999, "cache": "hit", "build_s": None,
         "sim_s": None},                                    # explicit nulls
        {"schema": 3, "config": "ideal", "workload": "gups",
         "cycles": 500, "cache": "miss", "build_s": 0.25,
         "sim_s": 1.5},                                     # real split
    ]
    path.write_text("".join(json.dumps(r) + "\n" for r in rows))
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if "nocstar/gups" in line]
    assert lines and lines[0].count("-") >= 2
    assert any("0.25" in line for line in out.splitlines())


def test_submit_unreachable_daemon():
    with pytest.raises(SystemExit, match="unreachable"):
        main(
            ["submit", "--url", "http://127.0.0.1:1", "--workload", "olio",
             "--timeout", "2"]
        )


def test_cache_evict_max_age(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar",
            "--cache-dir", cache_dir,
        ]
    ) == 0
    capsys.readouterr()
    # Nothing is older than an hour yet.
    assert main(
        ["cache", "evict", "--cache-dir", cache_dir, "--max-age-s", "3600"]
    ) == 0
    assert "evicted 0 result(s)" in capsys.readouterr().out
    # Everything is older than zero seconds.
    assert main(
        ["cache", "evict", "--cache-dir", cache_dir, "--max-age-s", "0"]
    ) == 0
    assert "evicted 2 result(s)" in capsys.readouterr().out
    with pytest.raises(SystemExit, match="max-bytes and/or --max-age-s"):
        main(["cache", "evict", "--cache-dir", cache_dir])


def test_experiments_list(capsys):
    assert main(["experiments", "list"]) == 0
    out = capsys.readouterr().out
    assert "fig12" in out and "headline" in out
    assert "meta" in out and "analytic" in out


def test_experiments_unknown_campaign():
    with pytest.raises(SystemExit, match="unknown campaign"):
        main(["experiments", "run", "fig99"])


def test_experiments_run_and_check_round_trip(tmp_path, capsys):
    out_dir = str(tmp_path / "campaigns")
    # table1 is analytic (no simulation), so this stays unit-test fast.
    assert main(
        ["experiments", "run", "table1", "--scale", "smoke",
         "--out", out_dir, "--no-plot", "--check", "--no-cache"]
    ) == 0
    out = capsys.readouterr().out
    assert "latency_cycles.nocstar" in out
    assert "drift gate: table1" in out
    import os as _os

    assert _os.path.exists(_os.path.join(out_dir, "table1", "summary.json"))
    assert _os.path.exists(
        _os.path.join(out_dir, "table1", "design_choices.csv")
    )
    # `check` re-gates the written artifacts without re-running.
    assert main(
        ["experiments", "check", "table1", "--scale", "smoke",
         "--out", out_dir]
    ) == 0
    # ...but refuses a scale mismatch instead of mis-gating.
    with pytest.raises(SystemExit, match="scale"):
        main(["experiments", "check", "table1", "--scale", "reduced",
              "--out", out_dir])


def test_experiments_check_needs_artifacts(tmp_path):
    with pytest.raises(SystemExit, match="no summary"):
        main(["experiments", "check", "table1", "--scale", "smoke",
              "--out", str(tmp_path / "empty")])
