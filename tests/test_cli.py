"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "graph500" in out and "gups" in out


def test_configs_command(capsys):
    assert main(["configs", "--cores", "32"]) == 0
    out = capsys.readouterr().out
    assert "nocstar" in out and "monolithic" in out
    assert "920" in out  # area-normalised slice size


def test_run_command_small(capsys):
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "800", "--configs", "nocstar",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "private" in out  # baseline auto-added
    assert "speedup" in out


def test_run_command_unknown_config():
    with pytest.raises(SystemExit, match="unknown config"):
        main(["run", "--configs", "hyperloop", "--cores", "4",
              "--accesses", "100"])


def test_run_command_parallel_no_cache(capsys, tmp_path):
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar",
            "--jobs", "2", "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out and "speedup" in out


def test_run_command_cache_roundtrip(capsys, tmp_path):
    args = [
        "run", "--workload", "olio", "--cores", "4",
        "--accesses", "600", "--configs", "nocstar",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "2 miss(es)" in cold.err
    assert main(args) == 0
    warm = capsys.readouterr()
    assert "2 hit(s)" in warm.err
    assert warm.out == cold.out  # cached rerun prints the same table
    assert (tmp_path / "cache" / "telemetry.jsonl").exists()


def test_sweep_command_subset(capsys):
    code = main(
        [
            "sweep", "--cores", "4", "--accesses", "600",
            "--workloads", "olio",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "average" in out


def test_traffic_command(capsys):
    code = main(["traffic", "--tiles", "16", "--cycles", "300"])
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out


def test_export_and_run_trace(tmp_path, capsys):
    trace = tmp_path / "t.npz"
    code = main(
        [
            "export-trace", "--workload", "olio", "--cores", "2",
            "--accesses", "300", "--out", str(trace),
        ]
    )
    assert code == 0
    assert trace.exists()
    code = main(
        ["run", "--trace", str(trace), "--configs", "nocstar",
         "--cores", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out
