"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "graph500" in out and "gups" in out


def test_configs_command(capsys):
    assert main(["configs", "--cores", "32"]) == 0
    out = capsys.readouterr().out
    assert "nocstar" in out and "monolithic" in out
    assert "920" in out  # area-normalised slice size


def test_run_command_small(capsys):
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "800", "--configs", "nocstar",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "private" in out  # baseline auto-added
    assert "speedup" in out


def test_run_command_unknown_config():
    with pytest.raises(SystemExit, match="unknown config"):
        main(["run", "--configs", "hyperloop", "--cores", "4",
              "--accesses", "100"])


def test_run_command_parallel_no_cache(capsys, tmp_path):
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar",
            "--jobs", "2", "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out and "speedup" in out


def test_run_command_cache_roundtrip(capsys, tmp_path):
    args = [
        "run", "--workload", "olio", "--cores", "4",
        "--accesses", "600", "--configs", "nocstar",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "2 miss(es)" in cold.err
    assert main(args) == 0
    warm = capsys.readouterr()
    assert "2 hit(s)" in warm.err
    assert warm.out == cold.out  # cached rerun prints the same table
    assert (tmp_path / "cache" / "telemetry.jsonl").exists()


def test_sweep_command_subset(capsys):
    code = main(
        [
            "sweep", "--cores", "4", "--accesses", "600",
            "--workloads", "olio",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "average" in out


def test_traffic_command(capsys):
    code = main(["traffic", "--tiles", "16", "--cycles", "300"])
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out


def test_export_and_run_trace(tmp_path, capsys):
    trace = tmp_path / "t.npz"
    code = main(
        [
            "export-trace", "--workload", "olio", "--cores", "2",
            "--accesses", "300", "--out", str(trace),
        ]
    )
    assert code == 0
    assert trace.exists()
    code = main(
        ["run", "--trace", str(trace), "--configs", "nocstar",
         "--cores", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "nocstar" in out


def test_run_command_metrics_and_trace_out(tmp_path, capsys):
    obs = tmp_path / "obs.jsonl"
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar",
            "--no-cache", "--metrics", "--trace-out", str(obs),
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert obs.exists()
    assert "translation latency" in captured.out
    assert "NoC link utilization" in captured.out
    assert "hottest L2 slices" in captured.out
    # The written obs file feeds the report command directly.
    code = main(["report", str(obs), "--top", "4"])
    assert code == 0
    report = capsys.readouterr().out
    assert "p99" in report
    assert "nocstar/olio" in report
    assert "events" in report


def test_report_command_window(tmp_path, capsys):
    obs = tmp_path / "obs.jsonl"
    assert main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar",
            "--no-cache", "--trace-out", str(obs),
        ]
    ) == 0
    capsys.readouterr()
    assert main(["report", str(obs), "--window", "0:50"]) == 0
    out = capsys.readouterr().out
    assert "window 0..50" in out


def test_report_command_missing_file(capsys):
    # Robust by design: an absent obs file is warned about and skipped,
    # and the report still renders (its empty-input placeholder here).
    assert main(["report", "/nonexistent/obs.jsonl"]) == 0
    captured = capsys.readouterr()
    assert "no such obs file" in captured.err
    assert "no metric snapshots or events" in captured.out


def test_report_command_bad_window(tmp_path):
    obs = tmp_path / "obs.jsonl"
    obs.write_text("")
    with pytest.raises(SystemExit, match="--window"):
        main(["report", str(obs), "--window", "banana"])


def test_run_command_metrics_off_prints_no_report(capsys):
    code = main(
        [
            "run", "--workload", "olio", "--cores", "4",
            "--accesses", "600", "--configs", "nocstar", "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "translation latency" not in out
