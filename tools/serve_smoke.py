"""End-to-end smoke of the real ``repro serve`` process.

Unlike the test suite's in-process :class:`BackgroundDaemon`, this
drives the daemon exactly the way an operator does: spawn
``python -m repro serve`` as a subprocess, parse the ``serving on
http://host:port`` contract line from its stdout, then submit / poll /
fetch over real HTTP and shut it down cleanly via ``POST
/v1/shutdown``.  Exits non-zero on any deviation.  Wired into
``make serve-smoke`` (part of ``make verify``) and CI.

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.obs.spans import Tracer, build_tree, coverage  # noqa: E402
from repro.serve import ServeClient  # noqa: E402
from repro.serve.schema import SubmitRequest  # noqa: E402

STARTUP_TIMEOUT_S = 30.0
RUN_TIMEOUT_S = 300.0

#: Span sidecar written by the traced submission (uploaded as a CI
#: artifact; override with $SERVE_SMOKE_SPANS).
SPAN_PATH = os.environ.get("SERVE_SMOKE_SPANS", ".serve-smoke-spans.jsonl")


def _fail(process: subprocess.Popen, message: str) -> int:
    process.kill()
    process.wait(timeout=10.0)
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH", "")])
    )
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--jobs", "2", "--no-cache"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )

    # The daemon's startup contract: one parseable line on stdout.
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    url = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("serving on "):
            url = line.split("serving on ", 1)[1].strip()
            break
    if url is None:
        return _fail(process, "daemon never printed its 'serving on' line")
    print(f"serve-smoke: daemon up at {url}")

    tracer = Tracer()
    client = ServeClient(url, timeout=30.0, tracer=tracer)
    try:
        health = client.health()
        assert health["ok"] and health["workers"] == 2, health
        assert "storage" in health, health  # cache/trace-store stats

        request = SubmitRequest(
            workload="olio",
            configs=("private", "nocstar"),
            cores=4,
            accesses_per_core=600,
            seed=7,
            client_id="serve-smoke",
        )
        result = client.run(request, timeout=RUN_TIMEOUT_S)
        speedup = result.speedup("nocstar")
        assert speedup > 0.0, speedup
        print(f"serve-smoke: nocstar speedup {speedup:.3f}x over private")

        # One traced submission must yield one span tree covering
        # client -> HTTP -> queue -> worker -> build/sim, with the
        # root's wall time equal to child coverage + recorded gaps
        # (within 5%, per the coverage identity).
        names = {r["name"] for r in tracer.records}
        for needed in ("client.request", "client.submit", "server.submit",
                       "unit.queue", "unit.exec", "unit.build", "unit.sim"):
            assert needed in names, (needed, sorted(names))
        roots, children = build_tree(tracer.records)
        client_roots = [r for r in roots if r["name"] == "client.request"]
        assert len(client_roots) == 1, [r["name"] for r in roots]
        info = coverage(client_roots[0], children)
        assert info["duration"] > 0.0, info
        assert abs(
            info["duration"] - (info["child_s"] + info["gap_s"])
        ) <= 0.05 * info["duration"], info
        count = tracer.export_jsonl(SPAN_PATH)
        print(f"serve-smoke: wrote {count} span(s) to {SPAN_PATH}")
        render = subprocess.run(
            [sys.executable, "-m", "repro", "trace", SPAN_PATH],
            capture_output=True,
            text=True,
            env=env,
        )
        assert render.returncode == 0, render.stderr
        assert "critical path" in render.stdout, render.stdout
        print("serve-smoke: `repro trace` rendered the span tree")

        # Prometheus exposition via content negotiation.
        text = client.metrics_text()
        assert "# TYPE serve_executions_total counter" in text, text
        assert 'serve_queue_ms_bucket{le="+Inf"}' in text, text
        print("serve-smoke: Prometheus exposition negotiated")

        # A duplicate submission coalesces onto the retained job and
        # returns the byte-identical payload.
        again = client.submit(request)
        assert again["coalesced"], again
        replay = client.result(again["job_id"])
        assert pickle.dumps(replay.results) == pickle.dumps(result.results)
        print("serve-smoke: duplicate submission coalesced, byte-identical")

        counters = client.metrics()["counters"]
        assert counters["serve.executions"] == 2, counters
        assert counters["serve.jobs_coalesced"] == 1, counters

        assert client.shutdown()["stopping"]
    except Exception as exc:
        return _fail(process, f"{type(exc).__name__}: {exc}")

    try:
        code = process.wait(timeout=30.0)
    except subprocess.TimeoutExpired:
        return _fail(process, "daemon did not exit after /v1/shutdown")
    if code != 0:
        print(f"serve-smoke: FAIL: daemon exited {code}", file=sys.stderr)
        return 1
    print("serve-smoke: clean shutdown, exit 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
