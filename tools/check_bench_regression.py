#!/usr/bin/env python
"""Benchmark trend gate: fail on >15% regression vs the committed run.

Each ``benchmarks/BENCH_*.json`` artefact carries one headline latency
metric (chosen per file below).  This script compares the *fresh*
working-tree artefacts against a *baseline* — by default the last
committed version of the same file (``git show HEAD:<path>``), or any
directory of artefacts via ``--baseline-dir`` — and exits non-zero when
a fresh metric exceeds its baseline by more than ``--threshold``
(default 15%).

Wired into ``make verify`` (after the bench smokes regenerate the
artefacts) and CI, so a perf regression fails the gate with a table
instead of silently shifting the committed trajectory:

* ``BENCH_engine.json`` — ``batched_seconds`` (engine fast-path wall
  time; lower is better);
* ``BENCH_sweep.json``  — ``after_seconds`` (trace-store sweep wall
  time);
* ``BENCH_scale.json``  — ``scale_ratio`` (1024-core vectorized wall
  time over the 64-core batched anchor; interleaved best-of-N, so the
  ratio cancels machine speed and only engine drift moves it);
* ``BENCH_serve.json``  — ``p95_seconds`` (serving-tier tail latency
  under 256 concurrent clients);
* ``BENCH_faults.json`` — fault-free ``cycles`` (rate-0 point; the
  engine is deterministic, so any growth is a real simulation change,
  not noise).

A missing baseline (first run of a new benchmark, or a checkout with no
git history) is a *pass with a warning*: the gate guards trends, and a
trend needs two points.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional, Tuple

#: Default artefact set (all five guards), relative to the repo root.
DEFAULT_FILES = (
    "benchmarks/results/BENCH_engine.json",
    "benchmarks/results/BENCH_sweep.json",
    "benchmarks/results/BENCH_scale.json",
    "benchmarks/results/BENCH_serve.json",
    "benchmarks/results/BENCH_faults.json",
)

#: Regression threshold: fresh > baseline * (1 + this) fails.
DEFAULT_THRESHOLD = 0.15


def extract_metric(basename: str, payload: Dict) -> Tuple[str, float]:
    """``(metric_name, value)`` of one artefact's headline metric.

    Raises ``KeyError`` on an artefact that lacks its metric — a
    malformed artefact must fail the gate loudly, not pass as 0.
    """
    if basename == "BENCH_engine.json":
        return "batched_seconds", float(payload["batched_seconds"])
    if basename == "BENCH_sweep.json":
        return "after_seconds", float(payload["after_seconds"])
    if basename == "BENCH_scale.json":
        return "scale_ratio", float(payload["scale_ratio"])
    if basename == "BENCH_serve.json":
        return "p95_seconds", float(payload["p95_seconds"])
    if basename == "BENCH_faults.json":
        for point in payload["points"]:
            if point.get("rate") == 0.0:
                return "cycles@rate=0", float(point["cycles"])
        raise KeyError("no rate-0 point in BENCH_faults.json")
    raise KeyError(f"no metric rule for {basename!r}")


def load_baseline(
    path: str, baseline_dir: Optional[str]
) -> Optional[Dict]:
    """The baseline artefact for ``path``, or ``None`` when absent.

    ``--baseline-dir`` wins; otherwise the committed version is read
    with ``git show HEAD:<relpath>`` so the gate compares against the
    trajectory the repository actually records.
    """
    basename = os.path.basename(path)
    if baseline_dir is not None:
        candidate = os.path.join(baseline_dir, basename)
        if not os.path.exists(candidate):
            return None
        with open(candidate) as fh:
            return json.load(fh)
    relpath = os.path.relpath(path).replace(os.sep, "/")
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{relpath}"],
            capture_output=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def check_file(
    path: str, baseline_dir: Optional[str], threshold: float
) -> Dict[str, object]:
    """One artefact's verdict row (see the table rendering in main)."""
    basename = os.path.basename(path)
    row: Dict[str, object] = {
        "file": basename,
        "metric": None,
        "baseline": None,
        "fresh": None,
        "ratio": None,
        "status": "ok",
    }
    if not os.path.exists(path):
        row["status"] = "missing-fresh"
        return row
    with open(path) as fh:
        fresh_payload = json.load(fh)
    try:
        metric, fresh = extract_metric(basename, fresh_payload)
    except KeyError as exc:
        row["status"] = f"malformed: {exc}"
        return row
    row["metric"] = metric
    row["fresh"] = fresh
    baseline_payload = load_baseline(path, baseline_dir)
    if baseline_payload is None:
        row["status"] = "no-baseline"
        return row
    try:
        _, baseline = extract_metric(basename, baseline_payload)
    except KeyError as exc:
        row["status"] = f"malformed-baseline: {exc}"
        return row
    row["baseline"] = baseline
    if baseline <= 0.0:
        row["status"] = "no-baseline"
        return row
    ratio = fresh / baseline
    row["ratio"] = ratio
    if ratio > 1.0 + threshold:
        row["status"] = "REGRESSION"
    return row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold regression of BENCH_*.json "
        "metrics vs the committed (or --baseline-dir) artefacts"
    )
    parser.add_argument(
        "files",
        nargs="*",
        default=list(DEFAULT_FILES),
        help="fresh artefacts to check (default: all five guards)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional growth (default 0.15 = +15%%)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=None,
        help="directory of baseline artefacts (default: git show HEAD:)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0.0:
        parser.error("--threshold must be >= 0")

    rows = [
        check_file(path, args.baseline_dir, args.threshold)
        for path in args.files
    ]
    width = max(len(str(row["file"])) for row in rows) if rows else 0
    failed = False
    for row in rows:
        metric = row["metric"] or "-"
        fmt = (
            lambda v: f"{v:.6g}"
            if isinstance(v, float)
            else "-"
        )
        ratio = row["ratio"]
        delta = (
            f"{(ratio - 1.0) * 100.0:+.1f}%" if ratio is not None else "-"
        )
        status = row["status"]
        if status == "REGRESSION" or status.startswith("malformed"):
            failed = True
        elif status in ("no-baseline", "missing-fresh"):
            print(
                f"[warn] {row['file']}: {status} (pass — a trend "
                f"needs two points)",
                file=sys.stderr,
            )
        print(
            f"{str(row['file']):<{width}}  {metric:<16} "
            f"base={fmt(row['baseline']):<10} "
            f"fresh={fmt(row['fresh']):<10} {delta:>7}  {status}"
        )
    if failed:
        print(
            f"\nFAIL: regression beyond +{args.threshold * 100.0:.0f}% "
            f"(or malformed artefact) — see rows above",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: all metrics within +{args.threshold * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
