"""Calibration sweep: per-workload metrics vs the paper's targets."""
import sys, time
from repro.api import private, nocstar, monolithic, distributed, ideal, nocstar_ideal, compare
from repro.workloads import build_multithreaded, get_workload, WORKLOAD_NAMES

cores = int(sys.argv[1]) if len(sys.argv) > 1 else 16
acc = int(sys.argv[2]) if len(sys.argv) > 2 else 6000
sp = not (len(sys.argv) > 3 and sys.argv[3] == '4k')
names = sys.argv[4].split(',') if len(sys.argv) > 4 else WORKLOAD_NAMES

print(f"cores={cores} accesses={acc} superpages={sp}")
print(f"{'workload':15s} {'l1mr':>5s} {'pl2mr':>6s} {'elim%':>6s} {'mono':>6s} {'dist':>6s} {'nstar':>6s} {'nideal':>6s} {'ideal':>6s} {'walkcyc':>7s}")
t0 = time.time()
for name in names:
    wl = build_multithreaded(get_workload(name), cores, accesses_per_core=acc, seed=11, superpages=sp)
    cmp = compare(wl, [private(cores), monolithic(cores), distributed(cores), nocstar(cores), nocstar_ideal(cores), ideal(cores)])
    p = cmp.results['private']
    s = cmp.speedups()
    # avg walk latency proxy from private walk levels
    wl_lv = p.walk_levels
    lat = {'pwc':1,'l1':4,'l2':12,'llc':50,'dram':200}
    tot = sum(wl_lv.values())
    wc = sum(lat[k]*v for k,v in wl_lv.items())/max(p.stats.walks,1)
    print(f"{name:15s} {p.stats.l1_miss_rate:5.3f} {p.stats.l2_miss_rate:6.3f} {cmp.misses_eliminated_pct('distributed'):6.1f} "
          f"{s['monolithic-mesh']:6.3f} {s['distributed']:6.3f} {s['nocstar']:6.3f} {s['nocstar-ideal']:6.3f} {s['ideal']:6.3f} {wc:7.1f}")
print(f"elapsed {time.time()-t0:.1f}s")
