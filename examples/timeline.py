#!/usr/bin/env python3
"""Fig 10 walkthrough: the cycle-by-cycle life of one translation.

Issues a single L1-TLB-missing access against a remote NOCSTAR slice
(hit case and miss case) and prints the phase timeline — path setup,
single-cycle traversal, slice lookup, speculative response setup,
response traversal, and (on a miss) the page walk.

Run:  python examples/timeline.py
"""

from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.sim.system import System
from repro.vm.address import PAGE_4K


def trace_one(present: bool):
    timeline = []
    system = System(
        cfg.nocstar(16, translation_overlap=0.0), timeline=timeline
    )
    page = 15  # homed on the far-corner slice of the 4x4 mesh
    if present:
        system.shared_l2.insert_page_number(1, PAGE_4K, page)
    else:
        # Warm the page-table caches so the miss shows a steady-state
        # walk (upper levels in core 0's PWC, the leaf PTE line in the
        # shared LLC via a neighbouring core's earlier walk).
        system.walker.walk(1, 1, page - 1, PAGE_4K, now=0)
        system.walker.walk(0, 1, page + 64, PAGE_4K, now=0)
        timeline.clear()
    stall = system.l2_transaction(0, 1, PAGE_4K, page, now=0)
    return timeline, stall


def show(title: str, timeline, stall) -> None:
    print(f"\n{title}")
    rows = [[phase, start, end, end - start] for phase, start, end in timeline]
    print(render_table(["phase", "start", "end", "cycles"], rows, precision=0))
    print(f"total L1-miss stall: {stall} cycles")


def main() -> None:
    print("Timeline of an L1 TLB miss in NOCSTAR (Fig 10)")
    print("core 0 -> slice 15 (6 mesh hops, single-cycle traversal)")

    timeline, stall = trace_one(present=True)
    show("Remote slice HIT:", timeline, stall)

    timeline, stall = trace_one(present=False)
    show("Remote slice MISS (walk at the requesting core):", timeline, stall)

    print(
        "\nNote how the response path is set up speculatively during the"
        "\nslice lookup, so the reply spends exactly one cycle in flight."
    )


if __name__ == "__main__":
    main()
