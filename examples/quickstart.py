#!/usr/bin/env python3
"""Quickstart: compare NOCSTAR against private L2 TLBs on one workload.

Describes a 16-core graph500 experiment as a `Scenario`, runs it
through the paper's five TLB organisations (Table II) with the
parallel/cached `Runner`, and prints speedups, miss statistics, and
interconnect behaviour.

Run:  python examples/quickstart.py
(Re-running is near-instant: results come back from the .repro-cache
content-addressed result cache.)
"""

from repro.analysis.tables import render_table
from repro.api import Runner, Scenario, paper_lineup


def main() -> None:
    cores = 16
    scenario = Scenario(
        configurations=paper_lineup(cores),
        workloads="graph500",
        accesses_per_core=8_000,
        seed=42,
    )
    print(f"Simulating the Table II configurations ({cores} cores)...")
    runner = Runner(jobs=2, cache_dir=".repro-cache")
    lineup = runner.run_one(scenario)
    print(f"  cache: {runner.stats['hits']} hit(s), "
          f"{runner.stats['misses']} miss(es)")

    rows = []
    for name, result in lineup.results.items():
        speedup = result.speedup_over(lineup.baseline)
        rows.append(
            [
                name,
                result.cycles,
                speedup,
                f"{100 * result.stats.l1_miss_rate:.1f}%",
                f"{100 * result.stats.l2_miss_rate:.1f}%",
                result.stats.walks,
            ]
        )
    print()
    print(
        render_table(
            ["config", "cycles", "speedup", "L1 miss", "L2 miss", "walks"],
            rows,
        )
    )

    nocstar_result = lineup.results["nocstar"]
    network = nocstar_result.network
    print()
    print("NOCSTAR interconnect:")
    print(f"  messages:               {network['messages']:.0f}")
    print(f"  mean hops:              {network['mean_hops']:.2f}")
    print(f"  mean setup retries:     {network['mean_setup_retries']:.3f}")
    print(f"  no-contention fraction: {network['no_contention_fraction']:.1%}")
    print()
    print(
        "Shared TLB eliminated "
        f"{lineup.misses_eliminated_pct('nocstar'):.1f}% of the private "
        "L2 TLB misses."
    )
    ratio = lineup.speedup("nocstar") / lineup.speedup("ideal")
    print(f"NOCSTAR reaches {ratio:.1%} of the zero-latency ideal.")


if __name__ == "__main__":
    main()
