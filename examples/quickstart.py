#!/usr/bin/env python3
"""Quickstart: compare NOCSTAR against private L2 TLBs on one workload.

Builds a 16-core graph500-like trace, runs it through the paper's five
TLB organisations (Table II), and prints speedups, miss statistics, and
interconnect behaviour.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import render_table
from repro.sim import (
    compare,
    distributed,
    ideal,
    monolithic,
    nocstar,
    private,
)
from repro.workloads import build_multithreaded, get_workload


def main() -> None:
    cores = 16
    print(f"Building a {cores}-core graph500 trace...")
    workload = build_multithreaded(
        get_workload("graph500"),
        num_cores=cores,
        accesses_per_core=8_000,
        seed=42,
    )
    print(f"  {workload.total_accesses} memory references, "
          f"superpages={'on' if workload.superpages else 'off'}")

    print("Simulating the Table II configurations...")
    lineup = compare(
        workload,
        [
            private(cores),
            monolithic(cores),
            distributed(cores),
            nocstar(cores),
            ideal(cores),
        ],
    )

    rows = []
    for name, result in lineup.results.items():
        speedup = result.speedup_over(lineup.baseline)
        rows.append(
            [
                name,
                result.cycles,
                speedup,
                f"{100 * result.stats.l1_miss_rate:.1f}%",
                f"{100 * result.stats.l2_miss_rate:.1f}%",
                result.stats.walks,
            ]
        )
    print()
    print(
        render_table(
            ["config", "cycles", "speedup", "L1 miss", "L2 miss", "walks"],
            rows,
        )
    )

    nocstar_result = lineup.results["nocstar"]
    network = nocstar_result.network
    print()
    print("NOCSTAR interconnect:")
    print(f"  messages:               {network['messages']:.0f}")
    print(f"  mean hops:              {network['mean_hops']:.2f}")
    print(f"  mean setup retries:     {network['mean_setup_retries']:.3f}")
    print(f"  no-contention fraction: {network['no_contention_fraction']:.1%}")
    print()
    print(
        "Shared TLB eliminated "
        f"{lineup.misses_eliminated_pct('nocstar'):.1f}% of the private "
        "L2 TLB misses."
    )
    ratio = lineup.speedup("nocstar") / lineup.speedup("ideal")
    print(f"NOCSTAR reaches {ratio:.1%} of the zero-latency ideal.")


if __name__ == "__main__":
    main()
