#!/usr/bin/env python3
"""Pathological stress: the TLB-storm microbenchmark (Fig 19).

Runs canneal with and without a concurrent storm of context switches
(full TLB flushes) and superpage promotion churn (512-entry
invalidation bursts), across the shared TLB organisations, then
hammers a single slice from every core (§V's second microbenchmark).

Run:  python examples/tlb_storm.py
"""

from repro.analysis.tables import render_table
from repro.api import (
    distributed,
    monolithic,
    nocstar,
    private,
    simulate,
)
from repro.workloads import build_multithreaded, get_workload
from repro.workloads.microbench import build_slice_hammer, storm_config_for


def main() -> None:
    cores = 16
    accesses = 6_000
    spec = get_workload("canneal")
    workload = build_multithreaded(
        spec, cores, accesses_per_core=accesses, seed=13
    )
    storm = storm_config_for(accesses, mean_gap=spec.mean_gap)
    configs = [
        private(cores), monolithic(cores), distributed(cores), nocstar(cores)
    ]

    print(f"canneal on {cores} cores; storm: flush + 512-entry "
          f"invalidation burst every {storm.period} cycles\n")
    rows = []
    base_alone = base_storm = None
    for config in configs:
        alone = simulate(config, workload)
        stormy = simulate(config, workload, storm=storm)
        if config.name == "private":
            base_alone, base_storm = alone.cycles, stormy.cycles
        rows.append(
            [
                config.name,
                base_alone / alone.cycles,
                base_storm / stormy.cycles,
                stormy.stats.flushes,
                stormy.stats.shootdown_messages,
            ]
        )
    print(render_table(
        ["config", "speedup (alone)", "speedup (w/ub)", "flushes",
         "shootdown msgs"],
        rows,
    ))

    print("\nSlice hammer: every core beats on one victim slice.")
    hammer = build_slice_hammer(cores, accesses_per_core=3_000)
    rows = []
    base = simulate(private(cores), hammer).cycles
    for config in configs[1:]:
        cycles = simulate(config, hammer).cycles
        rows.append([config.name, base / cycles])
    print(render_table(["config", "speedup vs private"], rows))
    print(
        "\nTakeaway: storms and slice hammering hurt every organisation,"
        "\nbut NOCSTAR remains the best shared configuration (Fig 19)."
    )


if __name__ == "__main__":
    main()
