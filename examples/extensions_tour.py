#!/usr/bin/env python3
"""Tour of the library's extensions beyond the paper's evaluation.

1. Slice indexing (§III-A hints at "optimized indexing mechanisms"):
   modulo vs XOR-fold under a strided attack pattern.
2. QoS way-partitioning (the paper's future work): protecting a mix's
   victim application from a thrashing neighbour.
3. The distributed TLB over every Table I fabric, in vivo.
4. ASID recycling pressure.

Run:  python examples/extensions_tour.py
"""

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.sim import configs as cfg
from repro.api import compare, simulate
from repro.vm import AsidManager
from repro.workloads import WORKLOADS, build_multiprogrammed
from repro.workloads.microbench import build_slice_hammer

CORES = 16


def indexing_demo() -> None:
    print("1) Slice indexing under a strided attack (slice hammer):")
    hammer = build_slice_hammer(CORES, accesses_per_core=2_000)
    base = simulate(cfg.private(CORES), hammer).cycles
    rows = []
    for indexing in ("modulo", "xor-fold"):
        config = replace(
            cfg.nocstar(CORES), slice_indexing=indexing, name=indexing
        )
        rows.append([indexing, base / simulate(config, hammer).cycles])
    print(render_table(["indexing", "speedup vs private"], rows))


def qos_demo() -> None:
    print("\n2) QoS way-partitioning on a hostile mix (gups aggressor):")
    mix = build_multiprogrammed(
        [WORKLOADS[n] for n in ("gups", "canneal", "olio", "nutch")],
        CORES, accesses_per_core=2_500, seed=3,
    )
    rows = []
    for quota, label in ((None, "no QoS"), (2, "2-way quota")):
        config = replace(cfg.nocstar(CORES), qos_way_quota=quota, name=label)
        lineup = compare(mix, [cfg.private(CORES), config])
        result = lineup.results[label]
        apps = result.app_speedups_over(lineup.baseline)
        rows.append(
            [label, result.speedup_over(lineup.baseline), min(apps.values())]
        )
    print(render_table(["policy", "throughput", "worst app"], rows))


def fabric_demo() -> None:
    print("\n3) The distributed TLB over every Table I fabric (canneal):")
    from repro.workloads import build_multithreaded, get_workload

    wl = build_multithreaded(
        get_workload("canneal"), CORES, accesses_per_core=4_000, seed=7
    )
    base = simulate(cfg.private(CORES), wl).cycles
    rows = []
    for noc in ("mesh", "bus", "fbfly-wide", "fbfly-narrow"):
        rows.append(
            [noc, base / simulate(cfg.distributed(CORES, noc=noc), wl).cycles]
        )
    rows.append(["nocstar", base / simulate(cfg.nocstar(CORES), wl).cycles])
    print(render_table(["fabric", "speedup vs private"], rows))


def asid_demo() -> None:
    print("\n4) ASID recycling pressure (8 hardware tags, 20 processes):")
    manager = AsidManager(capacity=8)
    shootdowns = 0
    for round_robin in range(3):
        for pid in range(20):
            if manager.activate(pid).required_shootdown:
                shootdowns += 1
    print(f"   {manager.recycles} recycles -> {shootdowns} ASID shootdowns "
          "(each invalidates one context's entries chip-wide)")


def main() -> None:
    indexing_demo()
    qos_demo()
    fabric_demo()
    asid_demo()


if __name__ == "__main__":
    main()
