#!/usr/bin/env python3
"""Interconnect design-space exploration with synthetic traffic.

Uses the cycle-accurate NOCSTAR model (real per-link arbiters with
rotating priority) and the queueing mesh on a 64-tile chip, sweeping
injection rate (Fig 11c) and NOCSTAR's HPCmax (pipelining degree), and
prints the Table I design comparison.

Run:  python examples/interconnect_explorer.py
"""

from repro.analysis.tables import render_table
from repro.noc.synthetic import run_mesh_traffic, run_nocstar_traffic
from repro.noc.topology import MeshTopology
from repro.noc.tradeoffs import evaluate_designs


def sweep_injection(topo: MeshTopology) -> None:
    print("Latency vs injection rate (64 tiles, uniform random):")
    rows = []
    for rate in (0.01, 0.05, 0.1, 0.2, 0.3):
        nocstar = run_nocstar_traffic(topo, rate, cycles=2_000)
        mesh = run_mesh_traffic(topo, rate, cycles=2_000)
        rows.append(
            [rate, nocstar.mean_latency, mesh.mean_latency,
             f"{nocstar.no_contention_fraction:.1%}"]
        )
    print(render_table(
        ["inj rate", "NOCSTAR (cyc)", "mesh (cyc)", "NOCSTAR no-contention"],
        rows, precision=2,
    ))


def sweep_hpc(topo: MeshTopology) -> None:
    print("\nNOCSTAR HPCmax sweep at injection 0.05 (pipeline latches vs "
          "single-cycle reach):")
    rows = []
    for hpc in (2, 4, 8, 16):
        result = run_nocstar_traffic(topo, 0.05, cycles=2_000, hpc_max=hpc)
        rows.append([hpc, result.mean_latency, result.mean_attempts])
    print(render_table(
        ["HPCmax", "mean latency", "mean setup attempts"], rows, precision=2
    ))


def design_table() -> None:
    print("\nTable I — TLB interconnect design choices (64 tiles):")
    rows = [
        [r.name, r.glyphs["latency"], r.glyphs["bandwidth"],
         r.glyphs["area"], r.glyphs["power"], r.latency_cycles]
        for r in evaluate_designs(64)
    ]
    print(render_table(
        ["NOC", "latency", "bandwidth", "area", "power", "cycles"],
        rows, precision=1,
    ))


def main() -> None:
    topo = MeshTopology(64)
    sweep_injection(topo)
    sweep_hpc(topo)
    design_table()


if __name__ == "__main__":
    main()
