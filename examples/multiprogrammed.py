#!/usr/bin/env python3
"""Multiprogrammed fairness study (the Fig 18 scenario, in miniature).

Runs a handful of 4-application mixes (8 threads each on 32 cores)
through private / monolithic / distributed / NOCSTAR TLBs and reports
aggregate throughput and the worst-off application per mix — showing
how NOCSTAR shares TLB capacity without starving anyone.

Run:  python examples/multiprogrammed.py
"""

from repro.analysis.tables import render_table
from repro.api import compare, distributed, monolithic, nocstar, private
from repro.workloads import WORKLOADS, build_multiprogrammed
from repro.workloads.multiprog import sample_combinations


def main() -> None:
    cores = 32
    combos = sample_combinations(4, seed=7)
    configs = [
        private(cores), monolithic(cores), distributed(cores), nocstar(cores)
    ]

    rows = []
    for combo in combos:
        print(f"Simulating {' + '.join(combo)} ...")
        workload = build_multiprogrammed(
            [WORKLOADS[name] for name in combo],
            cores,
            accesses_per_core=3_000,
            seed=1,
        )
        lineup = compare(workload, configs)
        for config in ("monolithic-mesh", "distributed", "nocstar"):
            result = lineup.results[config]
            throughput = result.speedup_over(lineup.baseline)
            apps = result.app_speedups_over(lineup.baseline)
            victim, victim_speedup = min(apps.items(), key=lambda kv: kv[1])
            rows.append(
                ["+".join(n[:4] for n in combo), config, throughput,
                 victim_speedup, victim]
            )

    print()
    print(
        render_table(
            ["mix", "config", "throughput", "worst app speedup", "worst app"],
            rows,
        )
    )
    print(
        "\nTakeaway (Fig 18): NOCSTAR lifts aggregate throughput in every"
        "\nmix while its worst-off application stays near parity; the"
        "\nmonolithic organisation taxes every application's access"
        "\nlatency and loses mixes outright."
    )


if __name__ == "__main__":
    main()
